//! End-to-end determinism of the parallel execution layer: the full
//! MEGsim pipeline (functional characterization → normalization →
//! similarity → k-means/BIC clustering → representative simulation →
//! estimation) must produce **bit-identical** results at every
//! worker-pool size. Parallelism is an execution detail, never an
//! input to the methodology.

use megsim_core::evaluate::{
    characterize_sequence, evaluate_megsim, simulate_representatives, simulate_sequence,
};
use megsim_core::pipeline::MegsimConfig;
use megsim_core::{normalize, SimilarityMatrix};
use megsim_timing::{FrameStats, GpuConfig};
use megsim_workloads::by_alias;

/// Everything the pipeline produces, flattened for exact comparison.
struct PipelineArtifacts {
    features: Vec<f64>,
    normalized: Vec<f64>,
    distances: Vec<f64>,
    per_frame: Vec<FrameStats>,
    labels: Vec<usize>,
    representatives: Vec<(usize, usize)>,
    bic_scores: Vec<f64>,
    rep_stats: Vec<FrameStats>,
    estimated: FrameStats,
}

fn run_pipeline() -> PipelineArtifacts {
    let workload = by_alias("pvz", 0.02, 42).expect("known alias"); // 100 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let normalized = normalize(&matrix, &config.weights);
    let sim = SimilarityMatrix::from_points(&normalized);
    let n = sim.len();
    let mut distances = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            distances.push(sim.distance(i, j));
        }
    }

    let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
    let run = evaluate_megsim(&matrix, &per_frame, &config);
    let rep_stats = simulate_representatives(
        |i| workload.frame(i),
        &run.selection,
        workload.shaders(),
        &gpu,
    );

    PipelineArtifacts {
        features: matrix.rows.as_slice().to_vec(),
        normalized: normalized.as_slice().to_vec(),
        distances,
        per_frame,
        labels: run.selection.labels.clone(),
        representatives: run
            .selection
            .representatives
            .iter()
            .map(|r| (r.frame_index, r.cluster_size))
            .collect(),
        bic_scores: run.selection.bic_scores.clone(),
        rep_stats,
        estimated: run.estimated,
    }
}

/// Parallel batch frame synthesis is bit-identical to sequential
/// per-frame generation at every worker-pool size: same draw-call
/// fingerprints in the same order.
#[test]
fn frame_generation_is_bit_identical_at_any_thread_count() {
    use megsim_core::frame_cache::frame_fingerprint;

    let workload = by_alias("hwh", 0.02, 42).expect("known alias");
    let sequential: Vec<u128> = workload
        .iter_frames()
        .map(|f| frame_fingerprint(&f))
        .collect();

    for threads in [1usize, 2, 8] {
        megsim_exec::set_threads(threads);
        let batch: Vec<u128> = workload
            .generate_frames()
            .iter()
            .map(frame_fingerprint)
            .collect();
        assert_eq!(
            sequential, batch,
            "batch frame synthesis differs at {threads} threads"
        );
    }
    megsim_exec::set_threads(0);
}

/// Intra-frame tile sharding is bit-identical to the sequential raster
/// loop at every thread count, in every render mode, on both an even
/// tile grid and a 33×33 viewport whose right column and bottom row are
/// 1-px partial tiles (the shard-boundary regression case). Sweeps the
/// forced record/replay path and the Auto policy against a 1-thread
/// sequential baseline over warm multi-frame state.
#[test]
fn tile_sharded_timing_is_bit_identical_at_any_thread_count() {
    use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
    use megsim_gfx::draw::Viewport;
    use megsim_timing::{Gpu, ShardMode};

    let workload = by_alias("pvz", 0.02, 7).expect("known alias");
    let frames: Vec<_> = (0..4).map(|i| workload.frame(i)).collect();
    let shaders = workload.shaders();

    let run = |mode: RenderMode, viewport: Viewport, shard: ShardMode| {
        let mut cfg = GpuConfig::small(viewport.width, viewport.height);
        cfg.viewport = viewport;
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut gpu = Gpu::new(cfg);
        gpu.set_shard_mode(shard);
        let stats: Vec<FrameStats> = frames
            .iter()
            .map(|f| gpu.simulate_frame(&renderer.render_frame(f, shaders), shaders))
            .collect();
        (stats, gpu.now())
    };

    for viewport in [Viewport::new(128, 128, 16), Viewport::new(33, 33, 16)] {
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            megsim_exec::set_threads(1);
            let baseline = run(mode, viewport, ShardMode::Off);
            for threads in [1usize, 2, 8] {
                megsim_exec::set_threads(threads);
                let forced = run(mode, viewport, ShardMode::Force);
                assert_eq!(
                    forced, baseline,
                    "sharded timing differs: {mode:?} {}x{} at {threads} threads",
                    viewport.width, viewport.height
                );
            }
            megsim_exec::set_threads(8);
            let auto = run(mode, viewport, ShardMode::Auto);
            assert_eq!(
                auto, baseline,
                "auto-sharded timing differs: {mode:?} {}x{}",
                viewport.width, viewport.height
            );
            megsim_exec::set_threads(0);
        }
    }
}

/// Streamed replay — frames decoded incrementally off the trace bytes
/// and piped straight into the warm decode → render → timing pipeline —
/// is bit-identical to materialized replay (decode-all, play, then
/// simulate) in every render mode, on both wire versions, at every
/// worker-pool size.
#[test]
fn streamed_replay_is_bit_identical_to_materialized() {
    use megsim_core::evaluate::simulate_sequence_warm;
    use megsim_funcsim::RenderMode;
    use megsim_gl::{decode, encode_with_version, play, record_sequence, FrameIter};

    let workload = by_alias("pvz", 0.02, 11).expect("known alias");
    let frames: Vec<_> = (0..12).map(|i| workload.frame(i)).collect();
    let stream = record_sequence(workload.shaders(), &frames);

    for version in [1u16, 2] {
        let bytes = encode_with_version(&stream, version).expect("supported version");
        let replay = play(&decode(&bytes).expect("valid trace")).expect("valid stream");
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let mut cfg = GpuConfig::small(128, 128);
            cfg.render_mode = mode;
            megsim_exec::set_threads(1);
            let baseline =
                simulate_sequence_warm(replay.frames.iter().cloned(), &replay.shaders, &cfg);
            for threads in [1usize, 2, 8] {
                megsim_exec::set_threads(threads);
                let iter = FrameIter::new(std::io::Cursor::new(&bytes[..])).expect("valid header");
                let shaders = iter.shaders().clone();
                let streamed =
                    simulate_sequence_warm(iter.map(|f| f.expect("valid frame")), &shaders, &cfg);
                assert_eq!(
                    streamed, baseline,
                    "streamed replay differs: v{version} {mode:?} at {threads} threads"
                );
            }
            megsim_exec::set_threads(0);
        }
    }
}

/// The fused single-pass characterize+cluster path in its exact mode
/// (unbounded reservoir) is bit-identical to the two-pass pipeline —
/// same labels, representatives and BIC curve — at every worker-pool
/// size. This is the streaming path's oracle, pinned in the CI
/// determinism matrix.
#[test]
fn exact_streaming_selection_is_bit_identical_to_batch() {
    use megsim_core::evaluate::characterize_stream;
    use megsim_core::pipeline::{select_representatives, StreamClusterConfig};

    let workload = by_alias("pvz", 0.02, 42).expect("known alias"); // 100 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();
    let stream = StreamClusterConfig::exact();

    megsim_exec::set_threads(1);
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let batch = select_representatives(&matrix, &config);

    for threads in [1usize, 2, 8] {
        megsim_exec::set_threads(threads);
        let streamed = characterize_stream(
            workload.iter_frames(),
            workload.shaders(),
            &gpu,
            &config,
            &stream,
        );
        assert_eq!(
            streamed.selection, batch,
            "exact streaming selection differs at {threads} threads"
        );
        assert_eq!(
            streamed.reservoir_len,
            matrix.frames(),
            "exact mode must retain every frame"
        );
    }
    megsim_exec::set_threads(0);
}

/// The N-GPU rig is bit-identical at every worker-pool size for every
/// (N, dispatch, topology) configuration — the only parallel stage is
/// the pure tile-record fan-out — and the N = 1 rig is bit-identical
/// to the warm single-GPU ground truth in both dispatch modes and both
/// topologies (the degenerate-rig oracle the multi-GPU axis is pinned
/// against).
#[test]
fn multi_gpu_rig_is_bit_identical_at_any_thread_count() {
    use megsim_core::evaluate::{simulate_sequence_multi, simulate_sequence_warm};
    use megsim_timing::{DispatchMode, MultiGpuConfig, Topology};

    let workload = by_alias("pvz", 0.02, 9).expect("known alias");
    let frames: Vec<_> = (0..8).map(|i| workload.frame(i)).collect();
    let shaders = workload.shaders();
    let gpu = GpuConfig::small(192, 192);

    megsim_exec::set_threads(1);
    let warm = simulate_sequence_warm(frames.iter().cloned(), shaders, &gpu);

    for n in [1usize, 2, 4] {
        for dispatch in [DispatchMode::AlternateFrame, DispatchMode::SplitFrame] {
            for topology in [Topology::Shared, Topology::Private] {
                let multi = MultiGpuConfig::new(n, dispatch, topology);
                megsim_exec::set_threads(1);
                let baseline =
                    simulate_sequence_multi(frames.iter().cloned(), shaders, &gpu, multi);
                if n == 1 {
                    assert_eq!(
                        baseline.0, warm,
                        "N=1 {dispatch:?} {topology:?} differs from the single-GPU ground truth"
                    );
                    assert_eq!(baseline.1.transfers(), 0, "N=1 must not touch a link");
                }
                for threads in [2usize, 8] {
                    megsim_exec::set_threads(threads);
                    let got = simulate_sequence_multi(frames.iter().cloned(), shaders, &gpu, multi);
                    assert_eq!(
                        got, baseline,
                        "N={n} {dispatch:?} {topology:?} differs at {threads} threads"
                    );
                }
                megsim_exec::set_threads(0);
            }
        }
    }
}

#[test]
fn pipeline_is_bit_identical_at_any_thread_count() {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        megsim_exec::set_threads(threads);
        runs.push((threads, run_pipeline()));
    }
    megsim_exec::set_threads(0);

    let (_, baseline) = &runs[0];
    for (threads, r) in &runs[1..] {
        assert_eq!(
            baseline.features, r.features,
            "feature matrix differs at {threads} threads"
        );
        assert_eq!(
            baseline.normalized, r.normalized,
            "normalized matrix differs at {threads} threads"
        );
        assert_eq!(
            baseline.distances, r.distances,
            "similarity matrix differs at {threads} threads"
        );
        assert_eq!(
            baseline.per_frame, r.per_frame,
            "ground-truth frame stats differ at {threads} threads"
        );
        assert_eq!(
            baseline.labels, r.labels,
            "cluster labels differ at {threads} threads"
        );
        assert_eq!(
            baseline.representatives, r.representatives,
            "representatives differ at {threads} threads"
        );
        assert_eq!(
            baseline.bic_scores, r.bic_scores,
            "BIC curve differs at {threads} threads"
        );
        assert_eq!(
            baseline.rep_stats, r.rep_stats,
            "representative simulations differ at {threads} threads"
        );
        assert_eq!(
            baseline.estimated, r.estimated,
            "estimated totals differ at {threads} threads"
        );
    }
}
