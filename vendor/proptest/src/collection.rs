//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies: an exact size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi_inclusive: *range.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            rng.rng_mut().gen_range(self.lo..self.hi_inclusive + 1)
        }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
