//! # megsim-power
//!
//! Per-unit energy model of the MEGsim reproduction — the role McPAT
//! plays in the paper's toolchain. Its single job in the methodology is
//! §III-C / Fig. 4: measure the fraction of power dissipated in the
//! three phases of the graphics pipeline (Geometry, Tiling, Raster) and
//! turn those fractions into the weights of the vector of
//! characteristics (paper values: 0.108, 0.147, 0.745).
//!
//! Energy is computed as Σ (event count × per-event energy); activity
//! counts come from the timing model's [`FrameStats`]. The default
//! coefficients are calibrated on the synthetic Table II workload suite
//! so the average split matches the paper's Fig. 4.
//!
//! ```
//! use megsim_power::{EnergyModel, PhaseWeights};
//!
//! let weights = PhaseWeights::paper();
//! assert!((weights.geometry + weights.tiling + weights.raster - 1.0).abs() < 1e-9);
//! # let _ = EnergyModel::default();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

use megsim_timing::FrameStats;

/// Per-event energy coefficients in nanojoules.
///
/// The absolute scale is irrelevant to MEGsim (only the phase fractions
/// matter); values are in the relative proportions reported for
/// Mali-class mobile GPUs: fragment work dominates, texture sampling is
/// expensive, fixed-function geometry is cheap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyCoefficients {
    /// Vertex Fetcher: one vertex fetched (incl. vertex-cache access).
    pub vertex_fetch: f64,
    /// Vertex Processor: one shader instruction.
    pub vertex_instruction: f64,
    /// Primitive Assembly: one vertex consumed.
    pub prim_assembly_vertex: f64,
    /// Polygon List Builder: one primitive-tile entry written + read.
    pub bin_entry: f64,
    /// Tile cache: one access.
    pub tile_cache_access: f64,
    /// Rasterizer: one quad set up and interpolated.
    pub raster_quad: f64,
    /// Early-Z: one fragment depth test.
    pub early_z_test: f64,
    /// Fragment Processor: one shader instruction.
    pub fragment_instruction: f64,
    /// Texture cache: one access (one texel fetch).
    pub texture_access: f64,
    /// Blending Unit: one fragment blended (incl. color-buffer access).
    pub blend_op: f64,
}

impl Default for EnergyCoefficients {
    fn default() -> Self {
        // Calibrated on the synthetic Table II suite so that the average
        // Geometry/Tiling/Raster split reproduces the paper's Fig. 4
        // (10.8 % / 14.7 % / 74.5 %). The per-vertex and per-bin-entry
        // energies are much larger than per-fragment ones: a vertex
        // carries a 32 B fetch plus a full transform, and one Tiling
        // Engine entry moves a 388 B triangle record (Table I) — versus
        // a 4 B texel or a single fragment ALU op.
        Self {
            vertex_fetch: 4.0,
            vertex_instruction: 2.0,
            prim_assembly_vertex: 2.0,
            bin_entry: 42.0,
            tile_cache_access: 7.5,
            raster_quad: 0.40,
            early_z_test: 0.09,
            fragment_instruction: 0.11,
            texture_access: 0.35,
            blend_op: 0.12,
        }
    }
}

/// Energy attributed to the three pipeline phases of Fig. 4, in nJ.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Geometry Pipeline energy.
    pub geometry: f64,
    /// Tiling Engine energy.
    pub tiling: f64,
    /// Raster Pipeline energy.
    pub raster: f64,
}

impl PowerBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.geometry + self.tiling + self.raster
    }

    /// Phase fractions summing to 1 (all zeros if nothing ran).
    pub fn fractions(&self) -> PhaseWeights {
        let t = self.total();
        if t <= 0.0 {
            return PhaseWeights {
                geometry: 0.0,
                tiling: 0.0,
                raster: 0.0,
            };
        }
        PhaseWeights {
            geometry: self.geometry / t,
            tiling: self.tiling / t,
            raster: self.raster / t,
        }
    }

    /// Adds another breakdown (sequence accumulation).
    pub fn merge(&mut self, other: &PowerBreakdown) {
        self.geometry += other.geometry;
        self.tiling += other.tiling;
        self.raster += other.raster;
    }
}

/// The per-phase weights used to normalize the vector of
/// characteristics (§III-C): VSCV is weighted by `geometry`, FSCV by
/// `raster`, PRIM by `tiling`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseWeights {
    /// Geometry Pipeline fraction (paper: 0.108).
    pub geometry: f64,
    /// Tiling Engine fraction (paper: 0.147).
    pub tiling: f64,
    /// Raster Pipeline fraction (paper: 0.745).
    pub raster: f64,
}

impl PhaseWeights {
    /// The paper's measured weights (Fig. 4 averages).
    pub const fn paper() -> Self {
        Self {
            geometry: 0.108,
            tiling: 0.147,
            raster: 0.745,
        }
    }

    /// Equal weights (ablation baseline).
    pub const fn uniform() -> Self {
        Self {
            geometry: 1.0 / 3.0,
            tiling: 1.0 / 3.0,
            raster: 1.0 / 3.0,
        }
    }
}

impl Default for PhaseWeights {
    fn default() -> Self {
        Self::paper()
    }
}

/// The energy model: coefficients + attribution rules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per-event coefficients.
    pub coefficients: EnergyCoefficients,
}

impl EnergyModel {
    /// Creates a model with explicit coefficients.
    pub fn new(coefficients: EnergyCoefficients) -> Self {
        Self { coefficients }
    }

    /// Computes the per-phase energy of one simulated frame.
    pub fn breakdown(&self, stats: &FrameStats) -> PowerBreakdown {
        let c = &self.coefficients;
        let a = &stats.activity;
        let geometry = a.vertices_fetched as f64 * c.vertex_fetch
            + a.vertex_instructions as f64 * c.vertex_instruction
            + a.vertices_shaded as f64 * c.prim_assembly_vertex;
        let tiling = a.tile_bin_entries as f64 * c.bin_entry
            + stats.tile_cache.accesses() as f64 * c.tile_cache_access;
        let raster = a.quads_rasterized as f64 * c.raster_quad
            + a.fragments_rasterized as f64 * c.early_z_test
            + a.fragment_instructions as f64 * c.fragment_instruction
            + a.texture_memory_accesses() as f64 * c.texture_access
            + a.blend_ops as f64 * c.blend_op;
        PowerBreakdown {
            geometry,
            tiling,
            raster,
        }
    }

    /// Average phase fractions over a set of per-benchmark breakdowns —
    /// the Fig. 4 averaging that produces the §III-C weights. Each
    /// benchmark contributes equally (the paper averages per-benchmark
    /// fractions, not joules).
    pub fn derive_weights<'a>(
        &self,
        breakdowns: impl IntoIterator<Item = &'a PowerBreakdown>,
    ) -> PhaseWeights {
        let mut sum = PhaseWeights {
            geometry: 0.0,
            tiling: 0.0,
            raster: 0.0,
        };
        let mut n = 0usize;
        for b in breakdowns {
            let f = b.fractions();
            sum.geometry += f.geometry;
            sum.tiling += f.tiling;
            sum.raster += f.raster;
            n += 1;
        }
        if n == 0 {
            return PhaseWeights::paper();
        }
        PhaseWeights {
            geometry: sum.geometry / n as f64,
            tiling: sum.tiling / n as f64,
            raster: sum.raster / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_funcsim::FrameActivity;

    fn stats_with(activity: FrameActivity, tile_accesses: u64) -> FrameStats {
        // tile_accesses should be of the same order as bin entries.
        let mut s = FrameStats {
            activity: std::sync::Arc::new(activity),
            ..FrameStats::default()
        };
        s.tile_cache.reads = tile_accesses;
        s.tile_cache.hits = tile_accesses;
        s
    }

    /// Counts in the proportions the Table II suite produces per frame.
    fn typical_activity() -> FrameActivity {
        let mut a = FrameActivity::new(1, 1);
        a.vertices_fetched = 3000;
        a.vertices_shaded = 2000;
        a.vertex_instructions = 60_000;
        a.tile_bin_entries = 500;
        a.quads_rasterized = 15_000;
        a.fragments_rasterized = 55_000;
        a.fragments_shaded = 50_000;
        a.fragment_instructions = 1_000_000;
        a.texture_samples = [0, 0, 50_000, 0];
        a.blend_ops = 50_000;
        a
    }

    #[test]
    fn raster_dominates_typical_frames() {
        let model = EnergyModel::default();
        let b = model.breakdown(&stats_with(typical_activity(), 900));
        let f = b.fractions();
        assert!(f.raster > 0.4, "raster fraction = {}", f.raster);
        assert!(f.geometry < f.raster);
        assert!(f.tiling < f.raster);
        assert!((f.geometry + f.tiling + f.raster - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_weights_sum_to_one() {
        let w = PhaseWeights::paper();
        assert!((w.geometry + w.tiling + w.raster - 1.0).abs() < 1e-9);
        assert_eq!(w.geometry, 0.108);
        assert_eq!(w.tiling, 0.147);
        assert_eq!(w.raster, 0.745);
    }

    #[test]
    fn empty_frame_has_zero_breakdown() {
        let model = EnergyModel::default();
        let b = model.breakdown(&FrameStats::default());
        assert_eq!(b.total(), 0.0);
        let f = b.fractions();
        assert_eq!((f.geometry, f.tiling, f.raster), (0.0, 0.0, 0.0));
    }

    #[test]
    fn derive_weights_averages_fractions_per_benchmark() {
        let model = EnergyModel::default();
        let a = PowerBreakdown {
            geometry: 1.0,
            tiling: 1.0,
            raster: 2.0,
        };
        let b = PowerBreakdown {
            geometry: 0.0,
            tiling: 0.0,
            raster: 10.0,
        };
        let w = model.derive_weights([&a, &b]);
        assert!((w.geometry - 0.125).abs() < 1e-12);
        assert!((w.raster - 0.75).abs() < 1e-12);
    }

    #[test]
    fn derive_weights_empty_falls_back_to_paper() {
        let model = EnergyModel::default();
        let w = model.derive_weights(std::iter::empty());
        assert_eq!(w, PhaseWeights::paper());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PowerBreakdown {
            geometry: 1.0,
            tiling: 2.0,
            raster: 3.0,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 12.0);
    }
}
