//! The Similarity Matrix of paper §III-D (Fig. 5/6): an upper-triangular
//! `N × N` matrix of Euclidean distances between frame characteristic
//! vectors, with text/PGM renderers for visual inspection.
//!
//! Construction is the O(N²·D) hot spot of the characterization flow,
//! so [`SimilarityMatrix::from_points`] transposes the frames once into
//! a column-major [`SoaPoints`] and computes the upper triangle through
//! the cache-blocked pairwise kernel ([`SoaPoints::dist_block`]): row
//! blocks fan out on the `megsim-exec` worker pool, and within a block
//! each tile streams contiguous column slices the compiler vectorizes.
//! Per pair the kernel accumulates dimension by dimension — the exact
//! `euclidean_distance` op sequence — and block boundaries depend only
//! on `N`, so the packed triangle is bit-identical to the old per-row
//! scan at any thread count.

use megsim_cluster::{PointMatrix, SoaPoints};

/// Rows per pool task of the blocked triangle construction (also the
/// tile height). Fixed, so block boundaries never depend on the thread
/// count.
const ROW_BLOCK: usize = 64;

/// Tile width of the blocked kernel: 64 × 256 f64s is a 128 KiB tile,
/// resident in L2 while every dimension's column passes over it.
const J_BLOCK: usize = 256;

/// Upper-triangular matrix of pairwise frame distances.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    /// Row-major upper triangle, including the zero diagonal.
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds the matrix from (normalized) frame vectors held in
    /// contiguous storage, parallelizing across upper-triangle rows.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_points(frames: &PointMatrix) -> Self {
        assert!(!frames.is_empty(), "similarity of zero frames is undefined");
        let n = frames.len();
        let soa = SoaPoints::from_matrix(frames);
        // Each task owns ROW_BLOCK consecutive rows of the packed
        // triangle and walks the columns j ≥ row start in J_BLOCK-wide
        // tiles. Blocks shrink toward the bottom of the triangle; the
        // pool's work-stealing counter balances that skew, and ordered
        // collection keeps the concatenation deterministic.
        let blocks = megsim_exec::par_map_chunks(n, ROW_BLOCK, |is| {
            let h = is.len();
            // Start offset of each row's packed segment within this
            // block's output (row i owns n − i entries).
            let mut offsets = Vec::with_capacity(h);
            let mut total = 0usize;
            for i in is.clone() {
                offsets.push(total);
                total += n - i;
            }
            let mut out = vec![0.0f64; total];
            let mut tile = vec![0.0f64; h * J_BLOCK];
            let mut j0 = is.start;
            while j0 < n {
                let js = j0..(j0 + J_BLOCK).min(n);
                let w = js.len();
                soa.dist_block(is.clone(), js.clone(), &mut tile);
                for (bi, i) in is.clone().enumerate() {
                    // Only the triangle part (j ≥ i) of the tile lands
                    // in the output; it is contiguous in both the tile
                    // row and the packed segment.
                    let jlo = j0.max(i);
                    if jlo >= js.end {
                        continue;
                    }
                    let base = offsets[bi];
                    out[base + (jlo - i)..base + (js.end - i)]
                        .copy_from_slice(&tile[bi * w + (jlo - j0)..(bi + 1) * w]);
                }
                j0 = js.end;
            }
            out
        });
        let mut data = Vec::with_capacity(n * (n + 1) / 2);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Self { n, data }
    }

    /// Builds the matrix from nested per-frame vectors (convenience
    /// wrapper over [`SimilarityMatrix::from_points`]).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or rows have inconsistent lengths.
    pub fn from_vectors(frames: &[Vec<f64>]) -> Self {
        Self::from_points(&PointMatrix::from_rows(frames.to_vec()))
    }

    /// Number of frames `N`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: construction requires at least one frame; provided
    /// for API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between frames `i` and `j` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "frame index out of range");
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        // Elements before row `a` in the packed triangle: Σ_{r<a} (n−r).
        let before = a * self.n - a * (a + 1) / 2 + a;
        self.data[before + (b - a)]
    }

    /// Largest distance in the matrix.
    pub fn max_distance(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the matrix as ASCII art (darker = more similar), down-
    /// sampled to roughly `size × size` characters — the Fig. 5 plot.
    pub fn render_ascii(&self, size: usize) -> String {
        let size = size.clamp(1, self.n);
        let shades = [b'@', b'#', b'%', b'+', b'-', b':', b'.', b' '];
        let max = self.max_distance().max(f64::MIN_POSITIVE);
        let mut out = String::with_capacity(size * (size + 1));
        for by in 0..size {
            for bx in 0..size {
                if bx < by {
                    out.push(' ');
                    continue;
                }
                // Average distance within the block.
                let (i0, i1) = block_range(by, size, self.n);
                let (j0, j1) = block_range(bx, size, self.n);
                let mut sum = 0.0;
                let mut count = 0usize;
                for i in i0..i1 {
                    for j in j0..j1 {
                        if j >= i {
                            sum += self.distance(i, j);
                            count += 1;
                        }
                    }
                }
                let avg = if count == 0 { max } else { sum / count as f64 };
                let shade = ((avg / max) * (shades.len() - 1) as f64).round() as usize;
                out.push(shades[shade.min(shades.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the full matrix as a binary PGM image (P5), darker =
    /// more similar, for external plotting.
    pub fn to_pgm(&self) -> Vec<u8> {
        let max = self.max_distance().max(f64::MIN_POSITIVE);
        let mut out = format!("P5\n{} {}\n255\n", self.n, self.n).into_bytes();
        for i in 0..self.n {
            for j in 0..self.n {
                let d = self.distance(i.min(j), i.max(j));
                out.push((d / max * 255.0).round().clamp(0.0, 255.0) as u8);
            }
        }
        out
    }
}

fn block_range(block: usize, blocks: usize, n: usize) -> (usize, usize) {
    let lo = block * n / blocks;
    let hi = ((block + 1) * n / blocks).max(lo + 1).min(n);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![0.0, 0.1],
            vec![6.0, 8.0],
        ]
    }

    #[test]
    fn diagonal_is_zero() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        for i in 0..4 {
            assert_eq!(m.distance(i, i), 0.0);
        }
    }

    #[test]
    fn distances_are_symmetric_and_correct() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        assert_eq!(m.distance(0, 1), 5.0);
        assert_eq!(m.distance(1, 0), 5.0);
        assert!((m.distance(0, 2) - 0.1).abs() < 1e-9);
        assert_eq!(m.distance(0, 3), 10.0);
        assert_eq!(m.distance(1, 3), 5.0);
    }

    #[test]
    fn max_distance_found() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        assert_eq!(m.max_distance(), 10.0);
    }

    #[test]
    fn ascii_render_has_requested_shape() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        let art = m.render_ascii(4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Diagonal blocks are the most similar (darkest shade '@').
        assert_eq!(lines[0].as_bytes()[0], b'@');
    }

    #[test]
    fn pgm_header_and_size() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        let pgm = m.to_pgm();
        assert!(pgm.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(pgm.len(), b"P5\n4 4\n255\n".len() + 16);
    }

    #[test]
    fn similar_frames_are_darker_than_dissimilar() {
        let m = SimilarityMatrix::from_vectors(&vectors());
        assert!(m.distance(0, 2) < m.distance(0, 3));
    }

    #[test]
    fn blocked_kernel_is_bitwise_the_naive_scan() {
        // 131 frames spans multiple ROW_BLOCKs with a ragged tail, and
        // the awkward magnitudes would expose any accumulation-order
        // change in the low bits.
        let frames = PointMatrix::from_rows(
            (0..131)
                .map(|i| {
                    (0..7)
                        .map(|d| ((i * 31 + d * 17) as f64).sin() * 10f64.powi((d % 3) as i32))
                        .collect()
                })
                .collect(),
        );
        let m = SimilarityMatrix::from_points(&frames);
        for i in (0..131).step_by(13) {
            for j in (i..131).step_by(7) {
                let expected = megsim_cluster::euclidean_distance(frames.row(i), frames.row(j));
                assert_eq!(
                    m.distance(i, j).to_bits(),
                    expected.to_bits(),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let frames = PointMatrix::from_rows(
            (0..120)
                .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos(), i as f64])
                .collect(),
        );
        let mut matrices = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            matrices.push(SimilarityMatrix::from_points(&frames));
        }
        megsim_exec::set_threads(0);
        for pair in matrices.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }
}
