//! The pre-optimization scalar timing model, retained verbatim as the
//! oracle for the coalesced [`crate::gpu::Gpu`] fast path (the same
//! discipline as `megsim_funcsim::raster_reference`).
//!
//! [`ReferenceGpu`] issues one branchy cache access per vertex /
//! polygon-list entry / texel / framebuffer line, allocates per-tile
//! `fp_clock`/`tex_clock` vectors and regenerates texture sample
//! addresses per fragment — exactly the code the optimized model
//! replaced — and runs on the pre-optimization memory models
//! ([`ReferenceCache`], [`ReferenceMemoryHierarchy`]), so the pair is
//! the seed simulator end to end. The proptests at the bottom drive random frames through
//! both models across all three render modes and assert [`FrameStats`]
//! bit-equality: every cycle count, cache/DRAM counter, LRU and
//! row-buffer decision must agree. The `reference` cargo feature
//! exposes this module to benchmarks so speedups are measured against
//! the true baseline.

use megsim_funcsim::{FrameTrace, RenderMode};
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::{ShaderTable, TextureFilter};
use megsim_mem::{AddressSpace, ReferenceCache, ReferenceMemoryHierarchy};

use crate::config::GpuConfig;
use crate::stats::{FrameStats, UnitBusy};

/// The pre-optimization cycle-level GPU model.
#[derive(Debug)]
pub struct ReferenceGpu {
    config: GpuConfig,
    vertex_cache: ReferenceCache,
    texture_caches: Vec<ReferenceCache>,
    tile_cache: ReferenceCache,
    memory: ReferenceMemoryHierarchy,
    /// Monotonic global cycle counter across the whole simulation.
    now: u64,
    frame_index: u64,
    scratch_addrs: Vec<u64>,
}

impl ReferenceGpu {
    /// Builds a cold GPU from its configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            vertex_cache: ReferenceCache::new(config.vertex_cache.clone()),
            texture_caches: (0..config.fragment_processors)
                .map(|_| ReferenceCache::new(config.texture_cache.clone()))
                .collect(),
            tile_cache: ReferenceCache::new(config.tile_cache.clone()),
            memory: ReferenceMemoryHierarchy::new(config.l2.clone(), config.dram),
            now: 0,
            frame_index: 0,
            scratch_addrs: Vec::with_capacity(8),
            config,
        }
    }

    /// Global cycle count since construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Simulates one frame from its functional trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references shaders missing from `shaders`.
    pub fn simulate_frame(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        // Per-frame stat attribution: reset counters, keep state warm.
        self.vertex_cache.reset_stats();
        for c in &mut self.texture_caches {
            c.reset_stats();
        }
        self.tile_cache.reset_stats();
        self.memory.reset_stats();

        let frame_start = self.now;
        let mut unit_busy = UnitBusy::default();
        let geometry_cycles = self.geometry_phase(trace, frame_start, &mut unit_busy);
        let (raster_cycles, color_accesses, depth_accesses) = self.raster_phase(
            trace,
            shaders,
            frame_start + geometry_cycles,
            &mut unit_busy,
        );
        let cycles = geometry_cycles + raster_cycles + self.config.frame_overhead_cycles;
        self.now = frame_start + cycles;
        self.frame_index += 1;

        let mut texture_stats = megsim_mem::CacheStats::default();
        for c in &self.texture_caches {
            texture_stats.merge(c.stats());
        }
        FrameStats {
            cycles,
            geometry_cycles,
            raster_cycles,
            instructions: trace.activity.total_instructions(),
            vertex_cache: *self.vertex_cache.stats(),
            texture_cache: texture_stats,
            tile_cache: *self.tile_cache.stats(),
            memory: self.memory.stats(),
            color_buffer_accesses: color_accesses,
            depth_buffer_accesses: depth_accesses,
            activity: trace.activity.clone(),
            unit_busy,
        }
    }

    /// Geometry Pipeline + Tiling Engine. Returns the phase duration.
    fn geometry_phase(&mut self, trace: &FrameTrace, base: u64, busy: &mut UnitBusy) -> u64 {
        let cfg = &self.config;
        // Unit clocks, relative to `base`.
        let mut vf_clock = 0u64; // Vertex Fetcher (in-order, blocking)
        let mut vp_busy = 0u64; // total VP work, spread over the array
        let mut pa_clock = 0u64; // Primitive Assembly
        for draw in &trace.geometry {
            // Vertex Fetcher: one vertex per cycle; a vertex-cache miss
            // blocks the fetcher for the refill latency.
            for &addr in &draw.vertex_fetch_addresses {
                vf_clock += 1;
                let acc = self.vertex_cache.access(addr, false);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + vf_clock, true);
                }
                if acc.hit {
                    vf_clock += self.vertex_cache.config().latency;
                } else {
                    let fill = self.memory.access(addr, base + vf_clock, false);
                    vf_clock += fill.latency;
                }
            }
            // Vertex Processors: scalar, one instruction per cycle.
            vp_busy += u64::from(draw.vertices_shaded) * u64::from(draw.vertex_shader_instructions);
            // Primitive Assembly consumes one vertex per cycle.
            pa_clock += u64::from(draw.vertices_shaded) * cfg.prim_assembly_cycles_per_vertex;
        }
        let vp_clock = vp_busy.div_ceil(cfg.vertex_processors as u64 * cfg.vertex_issue_width);

        // Polygon List Builder: one list entry per primitive-tile pair,
        // written through the Tile cache. Immediate-mode rendering has
        // no Tiling Engine at all.
        let mut plb_clock = 0u64;
        let mut traced_entries = 0u64;
        let tiling_tiles: &[megsim_funcsim::TileTrace] = if trace.mode == RenderMode::Immediate {
            &[]
        } else {
            &trace.tiles
        };
        for tile in tiling_tiles {
            for (n, _prim) in tile.prims.iter().enumerate() {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n as u64);
                plb_clock += 1;
                let acc = self.tile_cache.access(addr, true);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + plb_clock, true);
                }
                if !acc.hit {
                    // Write-allocate fill; posted writes hide up to an
                    // L2 latency of the fill before backpressure bites.
                    let fill = self.memory.access(addr, base + plb_clock, false);
                    let arrival = fill.ready_at.saturating_sub(base);
                    plb_clock = (plb_clock + 1).max(arrival.saturating_sub(cfg.plb_write_window));
                } else {
                    plb_clock += self.tile_cache.config().latency;
                }
                traced_entries += 1;
            }
        }
        // Bin entries whose primitives produced no fragments in a tile
        // do not appear in the trace; charge their occupancy.
        plb_clock += trace
            .activity
            .tile_bin_entries
            .saturating_sub(traced_entries);

        busy.vertex_fetch += vf_clock;
        busy.vertex_alu += vp_clock;
        busy.prim_assembly += pa_clock;
        busy.polygon_list_write += plb_clock;

        // The four units pipeline against each other; the phase lasts as
        // long as the slowest, plus a pipeline-fill term bounded by the
        // vertex queue depth.
        let fill = u64::from(self.config.vertex_queue.entries);
        vf_clock.max(vp_clock).max(pa_clock).max(plb_clock) + fill
    }

    /// Raster Pipeline, tile by tile. Returns `(phase_cycles,
    /// color_buffer_accesses, depth_buffer_accesses)`.
    fn raster_phase(
        &mut self,
        trace: &FrameTrace,
        shaders: &ShaderTable,
        base: u64,
        busy: &mut UnitBusy,
    ) -> (u64, u64, u64) {
        let mut tile_work_clock = 0u64; // accumulated per-tile pipeline time
        let mut flush_clock = 0u64; // accumulated frame-buffer flush time
        let mut color_accesses = 0u64;
        let mut depth_accesses = 0u64;
        let n_fp = self.config.fragment_processors as u64;
        let immediate = trace.mode == RenderMode::Immediate;
        let deferred = trace.mode == RenderMode::TileBasedDeferred;
        for tile in &trace.tiles {
            let tile_base = base + tile_work_clock;
            // Polygon list read-back through the Tile cache (absent in
            // immediate mode: there are no tile lists to read).
            let mut list_clock = 0u64;
            let list_entries: &[megsim_funcsim::TilePrim] =
                if immediate { &[] } else { &tile.prims };
            for (n, _prim) in list_entries.iter().enumerate() {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n as u64);
                list_clock += 1;
                let acc = self.tile_cache.access(addr, false);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, tile_base + list_clock, true);
                }
                if acc.hit {
                    list_clock += self.tile_cache.config().latency;
                } else {
                    let fill = self.memory.access(addr, tile_base + list_clock, false);
                    list_clock += fill.latency;
                }
            }
            // Rasterizer / Early-Z / Fragment Processors / Blending.
            let mut raster_clock = 0u64;
            let mut earlyz_clock = 0u64;
            let mut fp_clock = vec![0u64; n_fp as usize];
            // Decoupled texture units: each FP has a texture pipe that
            // runs in parallel with its ALU; the FP finishes when the
            // slower of the two does.
            let mut tex_clock = vec![0u64; n_fp as usize];
            let mut blend_clock = 0u64;
            let mut visible_px = 0u64;
            let mut quad_rr = 0u64; // round-robin quad distribution
            for prim in &tile.prims {
                let fs = shaders.fragment_shader(prim.fragment_shader);
                let fs_instr = u64::from(fs.instruction_count());
                raster_clock += prim.quads.len() as u64
                    * u64::from(prim.attributes)
                    * self.config.rasterizer_cycles_per_attribute;
                for quad in &prim.quads {
                    // Early-Z: one quad per cycle; the 8-quad in-flight
                    // window hides the depth-buffer latency. A deferred
                    // (HSR) pipeline pays a second resolve pass.
                    earlyz_clock += if deferred { 2 } else { 1 };
                    depth_accesses += u64::from(quad.covered_count());
                    if immediate && prim.depth_test {
                        // IMR keeps depth in memory: one line-sized
                        // access per quad (depth values of a quad share
                        // a line), posted behind the early-z window.
                        let addr = AddressSpace::depth_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                        );
                        let acc = self.memory.access(addr, tile_base + earlyz_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        earlyz_clock =
                            earlyz_clock.max(arrival.saturating_sub(self.config.plb_write_window));
                    }
                    let vis = u64::from(quad.visible_count());
                    if vis == 0 {
                        quad_rr += 1;
                        continue;
                    }
                    let fp = (quad_rr % n_fp) as usize;
                    quad_rr += 1;
                    fp_clock[fp] += (vis * fs_instr).div_ceil(self.config.fragment_issue_width);
                    self.sample_textures(
                        prim.texture.as_ref(),
                        &fs.texture_samples,
                        prim.lod,
                        quad.uv,
                        vis,
                        fp,
                        base + tile_work_clock,
                        &mut tex_clock,
                    );
                    // Blending Unit: one fragment per cycle. TBR blends
                    // against the on-chip color buffer; IMR reads and
                    // writes the frame buffer in memory immediately —
                    // the off-chip traffic §II-A describes.
                    blend_clock += vis;
                    color_accesses += vis * if prim.blend.reads_destination() { 2 } else { 1 };
                    if immediate {
                        let addr = AddressSpace::framebuffer_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                            self.frame_index,
                        );
                        if prim.blend.reads_destination() {
                            self.memory.access(addr, tile_base + blend_clock, false);
                        }
                        let acc = self.memory.access(addr, tile_base + blend_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        blend_clock =
                            blend_clock.max(arrival.saturating_sub(self.config.flush_write_window));
                    }
                    visible_px += vis;
                }
            }
            let fp_alu_max = fp_clock.iter().copied().max().unwrap_or(0);
            let tex_max = tex_clock.iter().copied().max().unwrap_or(0);
            let fp_max = fp_clock
                .into_iter()
                .zip(tex_clock)
                .map(|(alu, tex)| alu.max(tex))
                .max()
                .unwrap_or(0);
            busy.polygon_list_read += list_clock;
            busy.rasterizer += raster_clock;
            busy.early_z += earlyz_clock;
            busy.fragment_alu += fp_alu_max;
            busy.texture_pipe += tex_max;
            busy.blending += blend_clock;
            let tile_pipeline = list_clock
                .max(raster_clock)
                .max(earlyz_clock)
                .max(fp_max)
                .max(blend_clock);
            tile_work_clock += tile_pipeline + self.config.early_z_in_flight;

            // Tile flush: covered pixels stream to the frame buffer
            // (partial-tile flush — Arm-style transaction elimination
            // skips untouched pixels). Overlaps the next tile's work.
            // IMR wrote its colors inline, so there is nothing to flush.
            if immediate {
                continue;
            }
            let (tx, ty) = (
                tile.tile_index % trace.viewport.tiles_x(),
                tile.tile_index / trace.viewport.tiles_x(),
            );
            let rect = trace.viewport.tile_rect(tx, ty);
            let flush_bytes = visible_px * 4;
            let flush_lines = flush_bytes.div_ceil(self.config.dram.line_size);
            let row_pixels = u64::from(trace.viewport.width);
            for line in 0..flush_lines {
                // Spread the flush across the tile's pixel rows so the
                // address stream matches a real raster layout.
                let local = line * (self.config.dram.line_size / 4);
                let y = rect.1 + (local / u64::from(trace.viewport.tile_size)) as u32;
                let x = rect.0 + (local % u64::from(trace.viewport.tile_size)) as u32;
                let addr = AddressSpace::framebuffer_pixel(
                    x.min(trace.viewport.width - 1),
                    y.min(trace.viewport.height - 1),
                    row_pixels as u32,
                    self.frame_index,
                );
                // Posted cached writes: the flush engine runs ahead of
                // memory by up to the Color queue's drain window, then
                // feels backpressure.
                let w = self.memory.access(addr, base + flush_clock, true);
                let retire = w.ready_at.saturating_sub(base);
                flush_clock =
                    (flush_clock + 1).max(retire.saturating_sub(self.config.flush_write_window));
            }
        }
        busy.flush += flush_clock;
        (
            tile_work_clock.max(flush_clock),
            color_accesses,
            depth_accesses,
        )
    }

    /// Issues the texture samples of `vis` fragments of one quad and
    /// charges the (partially hidden) miss latency to FP `fp`.
    #[allow(clippy::too_many_arguments)]
    fn sample_textures(
        &mut self,
        texture: Option<&megsim_gfx::texture::TextureDesc>,
        filters: &[TextureFilter],
        lod: u32,
        uv: Vec2,
        vis: u64,
        fp: usize,
        base: u64,
        tex_clock: &mut [u64],
    ) {
        let Some(texture) = texture else {
            return;
        };
        // Per-fragment sampling: offset each fragment by one texel (at
        // the selected LOD) so the address stream has realistic spatial
        // locality.
        let lw = (texture.width >> lod.min(texture.max_level())).max(1);
        let lh = (texture.height >> lod.min(texture.max_level())).max(1);
        let texel = Vec2::new(1.0 / lw as f32, 1.0 / lh as f32);
        for f in 0..vis {
            let fuv = Vec2::new(
                uv.x + texel.x * (f % 2) as f32,
                uv.y + texel.y * (f / 2) as f32,
            );
            for filter in filters {
                self.scratch_addrs.clear();
                texture.sample_addresses_lod(fuv, *filter, lod, &mut self.scratch_addrs);
                let addrs = std::mem::take(&mut self.scratch_addrs);
                for &addr in &addrs {
                    // One texel lookup per cycle of pipe occupancy; a
                    // miss stalls the pipe for a capped latency (the
                    // in-flight quad window hides the rest).
                    let acc = self.texture_caches[fp].access(addr, false);
                    if let Some(wb) = acc.writeback {
                        self.memory.access(wb, base + tex_clock[fp], true);
                    }
                    if acc.hit {
                        tex_clock[fp] += 1;
                    } else {
                        // The pipe keeps `texture_miss_stall_cap` cycles
                        // of work in flight; it stalls only when the
                        // fill arrives later than that window allows.
                        let fill = self.memory.access(addr, base + tex_clock[fp], false);
                        let arrival = fill.ready_at.saturating_sub(base);
                        tex_clock[fp] = (tex_clock[fp] + 1)
                            .max(arrival.saturating_sub(self.config.texture_miss_stall_cap));
                    }
                }
                self.scratch_addrs = addrs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::Gpu;
    use megsim_funcsim::{RenderConfig, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram};
    use megsim_gfx::texture::TextureDesc;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 10));
        t.add(ShaderProgram::fragment(
            0,
            "fs_tex",
            7,
            vec![TextureFilter::Bilinear],
        ));
        t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
        t.add(ShaderProgram::fragment(
            2,
            "fs_multi",
            5,
            vec![TextureFilter::Trilinear, TextureFilter::Nearest],
        ));
        t
    }

    fn draw_of(
        tris: &[[(f32, f32, f32); 3]],
        fs: u32,
        blend: BlendMode,
        depth_test: bool,
    ) -> DrawCall {
        let mut vertices = Vec::new();
        let mut indices = Vec::new();
        for t in tris {
            for &(x, y, z) in t {
                indices.push(vertices.len() as u32);
                let mut v = Vertex::at(Vec3::new(x, y, z));
                v.uv = Vec2::new((x + 1.0) * 0.5, (y + 1.0) * 0.5);
                vertices.push(v);
            }
        }
        DrawCall {
            mesh: Arc::new(Mesh::new(vertices, indices, 0x100)),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(fs),
            // Small texture: misses and capacity evictions both occur.
            texture: (fs != 1).then(|| TextureDesc::new(0, 64, 64, 4, 0x8000)),
            blend,
            depth_test,
        }
    }

    fn tri_strategy() -> impl Strategy<Value = [(f32, f32, f32); 3]> {
        let v = (-1.2f32..1.2, -1.2f32..1.2);
        (v.clone(), v.clone(), v, 0.05f32..0.95)
            .prop_map(|((x0, y0), (x1, y1), (x2, y2), z)| [(x0, y0, z), (x1, y1, z), (x2, y2, z)])
    }

    fn frame_strategy() -> impl Strategy<Value = Frame> {
        let blend = (0u32..3).prop_map(|b| match b {
            0 => BlendMode::Opaque,
            1 => BlendMode::AlphaBlend,
            _ => BlendMode::Additive,
        });
        let draw = (
            proptest::collection::vec(tri_strategy(), 1..6),
            0u32..3,
            blend,
            proptest::bool::ANY,
        );
        proptest::collection::vec(draw, 1..4).prop_map(|draws| {
            let mut f = Frame::new();
            for (tris, fs, blend, depth_test) in draws {
                f.draws.push(draw_of(&tris, fs, blend, depth_test));
            }
            f
        })
    }

    /// Runs the same frame sequence through the optimized and reference
    /// GPU models in every render mode, frame-by-frame over warm state,
    /// asserting full `FrameStats` bit-equality.
    fn assert_matches_reference(frames: &[Frame], viewport: Viewport) {
        let t = shaders();
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let mut cfg = GpuConfig::small(viewport.width, viewport.height);
            cfg.viewport = viewport;
            cfg.render_mode = mode;
            let renderer = Renderer::new(RenderConfig { viewport, mode });
            let mut optimized = Gpu::new(cfg.clone());
            let mut reference = ReferenceGpu::new(cfg);
            for (i, frame) in frames.iter().enumerate() {
                let trace = renderer.render_frame(frame, &t);
                let a = optimized.simulate_frame(&trace, &t);
                let b = reference.simulate_frame(&trace, &t);
                assert_eq!(a, b, "{mode:?} frame {i}");
                assert_eq!(optimized.now(), reference.now(), "{mode:?} frame {i} clock");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn optimized_timing_is_bit_identical_to_reference(
            frames in proptest::collection::vec(frame_strategy(), 1..3)
        ) {
            assert_matches_reference(&frames, Viewport::new(128, 128, 32));
        }

        #[test]
        fn timing_bit_identical_on_odd_viewport(frame in frame_strategy()) {
            // Odd target/tile geometry: partial tiles, odd flush rects.
            assert_matches_reference(std::slice::from_ref(&frame), Viewport::new(96, 40, 24));
        }
    }

    #[test]
    fn warm_sequence_stays_bit_identical() {
        // Deterministic two-layer overdraw scene repeated over warm
        // caches: evictions, writebacks and DRAM row reuse all occur.
        let mut f = Frame::new();
        for z in [0.4f32, -0.2] {
            f.draws.push(draw_of(
                &[
                    [(-0.9, -0.9, z), (0.9, -0.9, z), (0.9, 0.9, z)],
                    [(-0.9, -0.9, z), (0.9, 0.9, z), (-0.9, 0.9, z)],
                ],
                if z > 0.0 { 0 } else { 2 },
                BlendMode::Opaque,
                true,
            ));
        }
        let frames = vec![f.clone(), f.clone(), f];
        assert_matches_reference(&frames, Viewport::new(128, 128, 32));
    }
}
