//! The Geometry Pipeline: Vertex Fetcher, Vertex Processors, Primitive
//! Assembly and clip/cull (left half of Fig. 1).

use megsim_gfx::draw::{DrawCall, Viewport};
use megsim_gfx::geometry::{Primitive, ScreenVertex};
use megsim_gfx::math::Vec4;
use megsim_gfx::shader::ShaderTable;

use crate::activity::FrameActivity;
use crate::trace::DrawGeometry;

/// A draw call after the Geometry Pipeline: surviving screen-space
/// primitives plus the per-draw trace record.
#[derive(Debug, Clone)]
pub struct TransformedDraw {
    /// Primitives forwarded to the Tiling Engine.
    pub prims: Vec<Primitive>,
    /// Trace record for the timing model.
    pub geometry: DrawGeometry,
}

/// Reusable Geometry Pipeline scratch: the per-mesh post-transform
/// vertex caches, grown once and recycled across draws and frames.
#[derive(Debug, Default)]
pub struct GeomScratch {
    clip: Vec<Option<Vec4>>,
    screen: Vec<Option<ScreenVertex>>,
}

impl GeomScratch {
    /// Clears both caches and sizes them for `n` vertices.
    fn reset(&mut self, n: usize) {
        self.clip.clear();
        self.clip.resize(n, None);
        self.screen.clear();
        self.screen.resize(n, None);
    }
}

/// Frustum outcode bits for trivial clipping.
fn outcode(v: Vec4) -> u8 {
    let mut code = 0u8;
    if v.x < -v.w {
        code |= 1;
    }
    if v.x > v.w {
        code |= 2;
    }
    if v.y < -v.w {
        code |= 4;
    }
    if v.y > v.w {
        code |= 8;
    }
    if v.z < -v.w {
        code |= 16;
    }
    if v.z > v.w {
        code |= 32;
    }
    code
}

/// Runs one draw call through the Geometry Pipeline.
///
/// Vertices are shaded once per unique index (modelling the
/// post-transform cache of the Vertex Processors); triangles whose
/// vertices all fall outside one frustum plane — or that touch the
/// near plane (`w ≤ ε`) — are clipped; back-facing and degenerate
/// triangles are culled. The synthetic workloads keep geometry clear of
/// the near plane, so the conservative near-plane rejection loses no
/// realism while avoiding a full polygon clipper.
pub fn process_draw(
    draw: &DrawCall,
    draw_index: u32,
    viewport: Viewport,
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
    collect_addresses: bool,
    scratch: &mut GeomScratch,
) -> TransformedDraw {
    let mesh = &draw.mesh;
    let vs = shaders.vertex_shader(draw.vertex_shader);
    let half_w = viewport.width as f32 * 0.5;
    let half_h = viewport.height as f32 * 0.5;

    // --- Vertex Fetcher + Vertex Processors -------------------------
    scratch.reset(mesh.vertices.len());
    let GeomScratch {
        clip: clip_cache,
        screen: screen_cache,
    } = scratch;
    let mut fetch_addresses = Vec::new();
    if collect_addresses {
        fetch_addresses.reserve(mesh.indices.len());
    }
    let mut vertices_shaded = 0u32;
    for &idx in &mesh.indices {
        if collect_addresses {
            fetch_addresses.push(mesh.vertex_address(idx));
        }
        let slot = &mut clip_cache[idx as usize];
        if slot.is_none() {
            let v = &mesh.vertices[idx as usize];
            let clip = draw.transform.transform_point(v.position);
            *slot = Some(clip);
            vertices_shaded += 1;
            if clip.w > f32::EPSILON {
                let ndc = clip.perspective_divide();
                screen_cache[idx as usize] = Some(ScreenVertex {
                    x: (ndc.x + 1.0) * half_w,
                    y: (ndc.y + 1.0) * half_h,
                    z: (ndc.z + 1.0) * 0.5,
                    inv_w: 1.0 / clip.w,
                    uv: v.uv,
                });
            }
        }
    }
    activity.vertices_fetched += mesh.indices.len() as u64;
    activity.vertices_shaded += u64::from(vertices_shaded);
    activity.vertex_shader_invocations[draw.vertex_shader.0 as usize] += u64::from(vertices_shaded);
    activity.vertex_instructions += u64::from(vertices_shaded) * u64::from(vs.instruction_count());

    // --- Primitive Assembly + clip/cull ------------------------------
    let tri_count = mesh.triangle_count();
    activity.primitives_assembled += tri_count as u64;
    let mut prims = Vec::with_capacity(tri_count);
    for tri in mesh.indices.chunks_exact(3) {
        let c = [
            clip_cache[tri[0] as usize].expect("shaded above"),
            clip_cache[tri[1] as usize].expect("shaded above"),
            clip_cache[tri[2] as usize].expect("shaded above"),
        ];
        // Trivial reject: all vertices outside one plane, or touching
        // the near plane / behind the eye.
        let codes = [outcode(c[0]), outcode(c[1]), outcode(c[2])];
        let near_or_behind = c.iter().any(|v| v.w <= f32::EPSILON || v.z < -v.w);
        if near_or_behind || (codes[0] & codes[1] & codes[2]) != 0 {
            activity.primitives_clipped += 1;
            continue;
        }
        let prim = Primitive {
            v: [
                screen_cache[tri[0] as usize].expect("w > 0 checked"),
                screen_cache[tri[1] as usize].expect("w > 0 checked"),
                screen_cache[tri[2] as usize].expect("w > 0 checked"),
            ],
        };
        let area2 = prim.signed_area2();
        if area2.abs() < 1e-6 {
            activity.primitives_culled_degenerate += 1;
            continue;
        }
        if area2 < 0.0 {
            activity.primitives_culled_backface += 1;
            continue;
        }
        prims.push(prim);
    }
    activity.primitives_emitted += prims.len() as u64;

    TransformedDraw {
        geometry: DrawGeometry {
            draw_index,
            vertex_shader: draw.vertex_shader,
            vertex_shader_instructions: vs.instruction_count(),
            vertex_fetch_addresses: fetch_addresses,
            vertices_shaded,
            primitives_assembled: tri_count as u32,
            primitives_emitted: prims.len() as u32,
        },
        prims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::draw::BlendMode;
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram};
    use std::sync::Arc;

    fn table() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 10));
        t.add(ShaderProgram::fragment(0, "fs", 5, vec![]));
        t
    }

    fn draw_of(mesh: Mesh, transform: Mat4) -> DrawCall {
        DrawCall {
            mesh: Arc::new(mesh),
            transform,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
        }
    }

    fn ccw_tri() -> Mesh {
        // CCW in NDC after identity transform.
        Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.0, 0.5, 0.0)),
            ],
            vec![0, 1, 2],
            0x100,
        )
    }

    #[test]
    fn front_facing_triangle_survives() {
        let draw = draw_of(ccw_tri(), Mat4::IDENTITY);
        let viewport = Viewport::new(100, 100, 32);
        let mut act = FrameActivity::new(1, 1);
        let out = process_draw(
            &draw,
            0,
            viewport,
            &table(),
            &mut act,
            true,
            &mut GeomScratch::default(),
        );
        assert_eq!(out.prims.len(), 1);
        assert_eq!(act.primitives_emitted, 1);
        assert_eq!(act.vertices_shaded, 3);
        assert_eq!(act.vertex_shader_invocations[0], 3);
        assert_eq!(act.vertex_instructions, 30);
        assert_eq!(out.geometry.vertex_fetch_addresses.len(), 3);
        // NDC (-0.5,-0.5) maps to pixel (25, 25) on a 100×100 target.
        assert!((out.prims[0].v[0].x - 25.0).abs() < 1e-3);
    }

    #[test]
    fn backface_is_culled() {
        let mut mesh = ccw_tri();
        mesh.indices = vec![0, 2, 1]; // reverse winding
        let draw = draw_of(mesh, Mat4::IDENTITY);
        let mut act = FrameActivity::new(1, 1);
        let out = process_draw(
            &draw,
            0,
            Viewport::new(100, 100, 32),
            &table(),
            &mut act,
            false,
            &mut GeomScratch::default(),
        );
        assert!(out.prims.is_empty());
        assert_eq!(act.primitives_culled_backface, 1);
    }

    #[test]
    fn offscreen_triangle_is_clipped() {
        let draw = draw_of(ccw_tri(), Mat4::translation(Vec3::new(10.0, 0.0, 0.0)));
        let mut act = FrameActivity::new(1, 1);
        let out = process_draw(
            &draw,
            0,
            Viewport::new(100, 100, 32),
            &table(),
            &mut act,
            false,
            &mut GeomScratch::default(),
        );
        assert!(out.prims.is_empty());
        assert_eq!(act.primitives_clipped, 1);
    }

    #[test]
    fn degenerate_triangle_is_dropped() {
        let mesh = Mesh::new(
            vec![
                Vertex::at(Vec3::new(0.0, 0.0, 0.0)),
                Vertex::at(Vec3::new(0.5, 0.5, 0.0)),
                Vertex::at(Vec3::new(0.25, 0.25, 0.0)),
            ],
            vec![0, 1, 2],
            0,
        );
        let draw = draw_of(mesh, Mat4::IDENTITY);
        let mut act = FrameActivity::new(1, 1);
        let out = process_draw(
            &draw,
            0,
            Viewport::new(100, 100, 32),
            &table(),
            &mut act,
            false,
            &mut GeomScratch::default(),
        );
        assert!(out.prims.is_empty());
        assert_eq!(act.primitives_culled_degenerate, 1);
    }

    #[test]
    fn shared_vertices_are_shaded_once() {
        // Two triangles sharing an edge: 4 unique vertices, 6 fetches.
        let mesh = Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, 0.5, 0.0)),
                Vertex::at(Vec3::new(-0.5, 0.5, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0,
        );
        let draw = draw_of(mesh, Mat4::IDENTITY);
        let mut act = FrameActivity::new(1, 1);
        let _ = process_draw(
            &draw,
            0,
            Viewport::new(64, 64, 32),
            &table(),
            &mut act,
            false,
            &mut GeomScratch::default(),
        );
        assert_eq!(act.vertices_fetched, 6);
        assert_eq!(act.vertices_shaded, 4);
    }

    #[test]
    fn behind_camera_is_clipped() {
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        // Triangle at z = +1 is behind a camera looking down -Z.
        let model = Mat4::translation(Vec3::new(0.0, 0.0, 1.0));
        let draw = draw_of(ccw_tri(), proj * model);
        let mut act = FrameActivity::new(1, 1);
        let out = process_draw(
            &draw,
            0,
            Viewport::new(64, 64, 32),
            &table(),
            &mut act,
            false,
            &mut GeomScratch::default(),
        );
        assert!(out.prims.is_empty());
        assert_eq!(act.primitives_clipped, 1);
    }
}
