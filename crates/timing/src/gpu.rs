//! The cycle-level TBR GPU model.
//!
//! Timing is *timestamp-based*: every hardware unit keeps a local clock
//! advanced by its per-item occupancy and by the memory latencies it
//! observes; units that run concurrently in hardware contribute the
//! maximum of their clocks, units that serialize contribute the sum.
//! This mirrors the two-phase structure of a Tile-Based Rendering GPU:
//!
//! 1. **Geometry + Tiling phase** — Vertex Fetcher, Vertex Processors,
//!    Primitive Assembly and the Polygon List Builder run as a pipeline
//!    over the whole frame; the phase takes as long as its slowest unit.
//! 2. **Raster phase** — tiles are processed one at a time; inside a
//!    tile the Rasterizer, Early-Z, the four Fragment Processors and the
//!    Blending Unit pipeline against each other. The per-tile flush of
//!    final colors to the frame buffer overlaps the next tile's work
//!    (double-buffered on-chip tile memory), so the phase is the maximum
//!    of accumulated tile work and accumulated flush traffic.

use megsim_funcsim::{FrameTrace, RenderMode};
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::{ShaderTable, TextureFilter};
use megsim_mem::{AddressSpace, Cache, MemoryHierarchy};

use crate::config::GpuConfig;
use crate::stats::{FrameStats, UnitBusy};

/// The simulated GPU. Caches and DRAM state persist across frames
/// (warm-cache simulation), while statistics are attributed per frame.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    vertex_cache: Cache,
    texture_caches: Vec<Cache>,
    tile_cache: Cache,
    memory: MemoryHierarchy,
    /// Monotonic global cycle counter across the whole simulation.
    now: u64,
    frame_index: u64,
    scratch_addrs: Vec<u64>,
}

impl Gpu {
    /// Builds a cold GPU from its configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            vertex_cache: Cache::new(config.vertex_cache.clone()),
            texture_caches: (0..config.fragment_processors)
                .map(|_| Cache::new(config.texture_cache.clone()))
                .collect(),
            tile_cache: Cache::new(config.tile_cache.clone()),
            memory: MemoryHierarchy::new(config.l2.clone(), config.dram),
            now: 0,
            frame_index: 0,
            scratch_addrs: Vec::with_capacity(8),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Global cycle count since construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Simulates one frame from its functional trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references shaders missing from `shaders`.
    pub fn simulate_frame(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        // Per-frame stat attribution: reset counters, keep state warm.
        self.vertex_cache.reset_stats();
        for c in &mut self.texture_caches {
            c.reset_stats();
        }
        self.tile_cache.reset_stats();
        self.memory.reset_stats();

        let frame_start = self.now;
        let mut unit_busy = UnitBusy::default();
        let geometry_cycles = self.geometry_phase(trace, frame_start, &mut unit_busy);
        let (raster_cycles, color_accesses, depth_accesses) =
            self.raster_phase(trace, shaders, frame_start + geometry_cycles, &mut unit_busy);
        let cycles =
            geometry_cycles + raster_cycles + self.config.frame_overhead_cycles;
        self.now = frame_start + cycles;
        self.frame_index += 1;

        let mut texture_stats = megsim_mem::CacheStats::default();
        for c in &self.texture_caches {
            texture_stats.merge(c.stats());
        }
        FrameStats {
            cycles,
            geometry_cycles,
            raster_cycles,
            instructions: trace.activity.total_instructions(),
            vertex_cache: *self.vertex_cache.stats(),
            texture_cache: texture_stats,
            tile_cache: *self.tile_cache.stats(),
            memory: self.memory.stats(),
            color_buffer_accesses: color_accesses,
            depth_buffer_accesses: depth_accesses,
            activity: trace.activity.clone(),
            unit_busy,
        }
    }

    /// Geometry Pipeline + Tiling Engine. Returns the phase duration.
    fn geometry_phase(&mut self, trace: &FrameTrace, base: u64, busy: &mut UnitBusy) -> u64 {
        let cfg = &self.config;
        // Unit clocks, relative to `base`.
        let mut vf_clock = 0u64; // Vertex Fetcher (in-order, blocking)
        let mut vp_busy = 0u64; // total VP work, spread over the array
        let mut pa_clock = 0u64; // Primitive Assembly
        for draw in &trace.geometry {
            // Vertex Fetcher: one vertex per cycle; a vertex-cache miss
            // blocks the fetcher for the refill latency.
            for &addr in &draw.vertex_fetch_addresses {
                vf_clock += 1;
                let acc = self.vertex_cache.access(addr, false);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + vf_clock, true);
                }
                if acc.hit {
                    vf_clock += self.vertex_cache.config().latency;
                } else {
                    let fill = self.memory.access(addr, base + vf_clock, false);
                    vf_clock += fill.latency;
                }
            }
            // Vertex Processors: scalar, one instruction per cycle.
            vp_busy += u64::from(draw.vertices_shaded)
                * u64::from(draw.vertex_shader_instructions);
            // Primitive Assembly consumes one vertex per cycle.
            pa_clock += u64::from(draw.vertices_shaded)
                * cfg.prim_assembly_cycles_per_vertex;
        }
        let vp_clock =
            vp_busy.div_ceil(cfg.vertex_processors as u64 * cfg.vertex_issue_width);

        // Polygon List Builder: one list entry per primitive-tile pair,
        // written through the Tile cache. Immediate-mode rendering has
        // no Tiling Engine at all.
        let mut plb_clock = 0u64;
        let mut traced_entries = 0u64;
        let tiling_tiles: &[megsim_funcsim::TileTrace] =
            if trace.mode == RenderMode::Immediate { &[] } else { &trace.tiles };
        for tile in tiling_tiles {
            for (n, _prim) in tile.prims.iter().enumerate() {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n as u64);
                plb_clock += 1;
                let acc = self.tile_cache.access(addr, true);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + plb_clock, true);
                }
                if !acc.hit {
                    // Write-allocate fill; posted writes hide up to an
                    // L2 latency of the fill before backpressure bites.
                    let fill = self.memory.access(addr, base + plb_clock, false);
                    let arrival = fill.ready_at.saturating_sub(base);
                    plb_clock = (plb_clock + 1).max(arrival.saturating_sub(cfg.plb_write_window));
                } else {
                    plb_clock += self.tile_cache.config().latency;
                }
                traced_entries += 1;
            }
        }
        // Bin entries whose primitives produced no fragments in a tile
        // do not appear in the trace; charge their occupancy.
        plb_clock += trace.activity.tile_bin_entries.saturating_sub(traced_entries);

        busy.vertex_fetch += vf_clock;
        busy.vertex_alu += vp_clock;
        busy.prim_assembly += pa_clock;
        busy.polygon_list_write += plb_clock;

        // The four units pipeline against each other; the phase lasts as
        // long as the slowest, plus a pipeline-fill term bounded by the
        // vertex queue depth.
        let fill = u64::from(self.config.vertex_queue.entries);
        vf_clock.max(vp_clock).max(pa_clock).max(plb_clock) + fill
    }

    /// Raster Pipeline, tile by tile. Returns `(phase_cycles,
    /// color_buffer_accesses, depth_buffer_accesses)`.
    fn raster_phase(
        &mut self,
        trace: &FrameTrace,
        shaders: &ShaderTable,
        base: u64,
        busy: &mut UnitBusy,
    ) -> (u64, u64, u64) {
        let mut tile_work_clock = 0u64; // accumulated per-tile pipeline time
        let mut flush_clock = 0u64; // accumulated frame-buffer flush time
        let mut color_accesses = 0u64;
        let mut depth_accesses = 0u64;
        let n_fp = self.config.fragment_processors as u64;
        let immediate = trace.mode == RenderMode::Immediate;
        let deferred = trace.mode == RenderMode::TileBasedDeferred;
        for tile in &trace.tiles {
            let tile_base = base + tile_work_clock;
            // Polygon list read-back through the Tile cache (absent in
            // immediate mode: there are no tile lists to read).
            let mut list_clock = 0u64;
            let list_entries: &[megsim_funcsim::TilePrim] =
                if immediate { &[] } else { &tile.prims };
            for (n, _prim) in list_entries.iter().enumerate() {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n as u64);
                list_clock += 1;
                let acc = self.tile_cache.access(addr, false);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, tile_base + list_clock, true);
                }
                if acc.hit {
                    list_clock += self.tile_cache.config().latency;
                } else {
                    let fill = self.memory.access(addr, tile_base + list_clock, false);
                    list_clock += fill.latency;
                }
            }
            // Rasterizer / Early-Z / Fragment Processors / Blending.
            let mut raster_clock = 0u64;
            let mut earlyz_clock = 0u64;
            let mut fp_clock = vec![0u64; n_fp as usize];
            // Decoupled texture units: each FP has a texture pipe that
            // runs in parallel with its ALU; the FP finishes when the
            // slower of the two does.
            let mut tex_clock = vec![0u64; n_fp as usize];
            let mut blend_clock = 0u64;
            let mut visible_px = 0u64;
            let mut quad_rr = 0u64; // round-robin quad distribution
            for prim in &tile.prims {
                let fs = shaders.fragment_shader(prim.fragment_shader);
                let fs_instr = u64::from(fs.instruction_count());
                raster_clock += prim.quads.len() as u64
                    * u64::from(prim.attributes)
                    * self.config.rasterizer_cycles_per_attribute;
                for quad in &prim.quads {
                    // Early-Z: one quad per cycle; the 8-quad in-flight
                    // window hides the depth-buffer latency. A deferred
                    // (HSR) pipeline pays a second resolve pass.
                    earlyz_clock += if deferred { 2 } else { 1 };
                    depth_accesses += u64::from(quad.covered_count());
                    if immediate && prim.depth_test {
                        // IMR keeps depth in memory: one line-sized
                        // access per quad (depth values of a quad share
                        // a line), posted behind the early-z window.
                        let addr = AddressSpace::depth_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                        );
                        let acc = self.memory.access(addr, tile_base + earlyz_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        earlyz_clock = earlyz_clock
                            .max(arrival.saturating_sub(self.config.plb_write_window));
                    }
                    let vis = u64::from(quad.visible_count());
                    if vis == 0 {
                        quad_rr += 1;
                        continue;
                    }
                    let fp = (quad_rr % n_fp) as usize;
                    quad_rr += 1;
                    fp_clock[fp] += (vis * fs_instr).div_ceil(self.config.fragment_issue_width);
                    self.sample_textures(
                        prim.texture.as_ref(),
                        &fs.texture_samples,
                        prim.lod,
                        quad.uv,
                        vis,
                        fp,
                        base + tile_work_clock,
                        &mut tex_clock,
                    );
                    // Blending Unit: one fragment per cycle. TBR blends
                    // against the on-chip color buffer; IMR reads and
                    // writes the frame buffer in memory immediately —
                    // the off-chip traffic §II-A describes.
                    blend_clock += vis;
                    color_accesses += vis * if prim.blend.reads_destination() { 2 } else { 1 };
                    if immediate {
                        let addr = AddressSpace::framebuffer_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                            self.frame_index,
                        );
                        if prim.blend.reads_destination() {
                            self.memory.access(addr, tile_base + blend_clock, false);
                        }
                        let acc = self.memory.access(addr, tile_base + blend_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        blend_clock = blend_clock
                            .max(arrival.saturating_sub(self.config.flush_write_window));
                    }
                    visible_px += vis;
                }
            }
            let fp_alu_max = fp_clock.iter().copied().max().unwrap_or(0);
            let tex_max = tex_clock.iter().copied().max().unwrap_or(0);
            let fp_max = fp_clock
                .into_iter()
                .zip(tex_clock)
                .map(|(alu, tex)| alu.max(tex))
                .max()
                .unwrap_or(0);
            busy.polygon_list_read += list_clock;
            busy.rasterizer += raster_clock;
            busy.early_z += earlyz_clock;
            busy.fragment_alu += fp_alu_max;
            busy.texture_pipe += tex_max;
            busy.blending += blend_clock;
            let tile_pipeline = list_clock
                .max(raster_clock)
                .max(earlyz_clock)
                .max(fp_max)
                .max(blend_clock);
            tile_work_clock += tile_pipeline + self.config.early_z_in_flight;

            // Tile flush: covered pixels stream to the frame buffer
            // (partial-tile flush — Arm-style transaction elimination
            // skips untouched pixels). Overlaps the next tile's work.
            // IMR wrote its colors inline, so there is nothing to flush.
            if immediate {
                continue;
            }
            let (tx, ty) = (
                tile.tile_index % trace.viewport.tiles_x(),
                tile.tile_index / trace.viewport.tiles_x(),
            );
            let rect = trace.viewport.tile_rect(tx, ty);
            let flush_bytes = visible_px * 4;
            let flush_lines = flush_bytes.div_ceil(self.config.dram.line_size);
            let row_pixels = u64::from(trace.viewport.width);
            for line in 0..flush_lines {
                // Spread the flush across the tile's pixel rows so the
                // address stream matches a real raster layout.
                let local = line * (self.config.dram.line_size / 4);
                let y = rect.1 + (local / u64::from(trace.viewport.tile_size)) as u32;
                let x = rect.0 + (local % u64::from(trace.viewport.tile_size)) as u32;
                let addr = AddressSpace::framebuffer_pixel(
                    x.min(trace.viewport.width - 1),
                    y.min(trace.viewport.height - 1),
                    row_pixels as u32,
                    self.frame_index,
                );
                // Posted cached writes: the flush engine runs ahead of
                // memory by up to the Color queue's drain window, then
                // feels backpressure. Lines land in the L2 and reach
                // DRAM on eviction, exactly like IMR's color writes —
                // at full resolution the frame buffer far exceeds the
                // L2, so the traffic still goes off-chip.
                let w = self.memory.access(addr, base + flush_clock, true);
                let retire = w.ready_at.saturating_sub(base);
                flush_clock =
                    (flush_clock + 1).max(retire.saturating_sub(self.config.flush_write_window));
            }
        }
        busy.flush += flush_clock;
        (tile_work_clock.max(flush_clock), color_accesses, depth_accesses)
    }

    /// Issues the texture samples of `vis` fragments of one quad and
    /// charges the (partially hidden) miss latency to FP `fp`.
    #[allow(clippy::too_many_arguments)]
    fn sample_textures(
        &mut self,
        texture: Option<&megsim_gfx::texture::TextureDesc>,
        filters: &[TextureFilter],
        lod: u32,
        uv: Vec2,
        vis: u64,
        fp: usize,
        base: u64,
        tex_clock: &mut [u64],
    ) {
        let Some(texture) = texture else {
            return;
        };
        // Per-fragment sampling: offset each fragment by one texel (at
        // the selected LOD) so the address stream has realistic spatial
        // locality.
        let lw = (texture.width >> lod.min(texture.max_level())).max(1);
        let lh = (texture.height >> lod.min(texture.max_level())).max(1);
        let texel = Vec2::new(1.0 / lw as f32, 1.0 / lh as f32);
        for f in 0..vis {
            let fuv = Vec2::new(
                uv.x + texel.x * (f % 2) as f32,
                uv.y + texel.y * (f / 2) as f32,
            );
            for filter in filters {
                self.scratch_addrs.clear();
                texture.sample_addresses_lod(fuv, *filter, lod, &mut self.scratch_addrs);
                let addrs = std::mem::take(&mut self.scratch_addrs);
                for &addr in &addrs {
                    // One texel lookup per cycle of pipe occupancy; a
                    // miss stalls the pipe for a capped latency (the
                    // in-flight quad window hides the rest).
                    let acc = self.texture_caches[fp].access(addr, false);
                    if let Some(wb) = acc.writeback {
                        self.memory.access(wb, base + tex_clock[fp], true);
                    }
                    if acc.hit {
                        tex_clock[fp] += 1;
                    } else {
                        // The pipe keeps `texture_miss_stall_cap` cycles
                        // of work in flight; it stalls only when the
                        // fill arrives later than that window allows.
                        let fill = self.memory.access(addr, base + tex_clock[fp], false);
                        let arrival = fill.ready_at.saturating_sub(base);
                        tex_clock[fp] = (tex_clock[fp] + 1)
                            .max(arrival.saturating_sub(self.config.texture_miss_stall_cap));
                    }
                }
                self.scratch_addrs = addrs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_funcsim::{RenderConfig, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 16));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            12,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn quad_mesh(scale: f32) -> Arc<Mesh> {
        Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-scale, -scale, 0.0)),
                Vertex::at(Vec3::new(scale, -scale, 0.0)),
                Vertex::at(Vec3::new(scale, scale, 0.0)),
                Vertex::at(Vec3::new(-scale, scale, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0x4000,
        ))
    }

    fn frame(scale: f32, textured: bool) -> Frame {
        let mut f = Frame::new();
        f.draws.push(DrawCall {
            mesh: quad_mesh(scale),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: textured.then(|| TextureDesc::new(0, 256, 256, 4, 0x1000_0000)),
            blend: BlendMode::Opaque,
            depth_test: true,
        });
        f
    }

    fn trace_of(frame: &Frame, viewport: Viewport) -> FrameTrace {
        Renderer::new(RenderConfig::tbr(viewport)).render_frame(frame, &shaders())
    }

    #[test]
    fn simulated_frame_has_positive_cycles_and_traffic() {
        let cfg = GpuConfig::small(256, 256);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.simulate_frame(&trace_of(&frame(0.5, true), viewport), &shaders());
        assert!(stats.cycles > 0);
        assert!(stats.geometry_cycles > 0);
        assert!(stats.raster_cycles > 0);
        assert!(stats.instructions > 0);
        assert!(stats.dram_accesses() > 0);
        assert!(stats.l2_accesses() > 0);
        assert!(stats.tile_cache_accesses() > 0);
        assert!(stats.texture_cache.accesses() > 0);
        assert!(stats.vertex_cache.accesses() > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn bigger_frames_take_more_cycles() {
        let cfg = GpuConfig::small(256, 256);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let small = gpu.simulate_frame(&trace_of(&frame(0.2, true), viewport), &shaders());
        let big = gpu.simulate_frame(&trace_of(&frame(0.9, true), viewport), &shaders());
        assert!(big.cycles > small.cycles);
        assert!(big.tile_cache_accesses() >= small.tile_cache_accesses());
    }

    #[test]
    fn warm_caches_reduce_second_frame_traffic() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&frame(0.5, true), viewport);
        let cold = gpu.simulate_frame(&t, &shaders());
        let warm = gpu.simulate_frame(&t, &shaders());
        assert!(warm.dram_accesses() <= cold.dram_accesses());
        assert!(warm.cycles <= cold.cycles);
    }

    #[test]
    fn untextured_frame_has_no_texture_traffic() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.simulate_frame(&trace_of(&frame(0.5, false), viewport), &shaders());
        assert_eq!(stats.texture_cache.accesses(), 0);
    }

    #[test]
    fn global_clock_advances_monotonically() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&frame(0.4, true), viewport);
        assert_eq!(gpu.now(), 0);
        let a = gpu.simulate_frame(&t, &shaders());
        let after_one = gpu.now();
        assert_eq!(after_one, a.cycles);
        let b = gpu.simulate_frame(&t, &shaders());
        assert_eq!(gpu.now(), after_one + b.cycles);
    }

    #[test]
    fn empty_frame_costs_only_overhead() {
        let cfg = GpuConfig::small(128, 128);
        let overhead = cfg.frame_overhead_cycles;
        let fill = u64::from(cfg.vertex_queue.entries);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&Frame::new(), viewport);
        let stats = gpu.simulate_frame(&t, &shaders());
        assert_eq!(stats.cycles, overhead + fill);
        assert_eq!(stats.dram_accesses(), 0);
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use megsim_funcsim::{RenderConfig, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram};
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 12));
        t.add(ShaderProgram::fragment(0, "fs", 10, vec![]));
        t
    }

    /// Two overlapping opaque layers drawn back-to-front — the worst
    /// case for TBR overdraw and IMR memory traffic.
    fn overdraw_frame() -> Frame {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.6, -0.6, 0.0)),
                Vertex::at(Vec3::new(0.6, -0.6, 0.0)),
                Vertex::at(Vec3::new(0.6, 0.6, 0.0)),
                Vertex::at(Vec3::new(-0.6, 0.6, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0x100,
        ));
        let mut f = Frame::new();
        for z in [0.4f32, -0.2] {
            f.draws.push(DrawCall {
                mesh: Arc::clone(&mesh),
                transform: Mat4::translation(Vec3::new(0.0, 0.0, z)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(0),
                texture: None,
                blend: BlendMode::Opaque,
                depth_test: true,
            });
        }
        f
    }

    fn run(mode: RenderMode) -> FrameStats {
        // Full-resolution target: the frame buffer (≈4 MB) far exceeds
        // the 256 KiB L2, as on real hardware, so IMR's per-fragment
        // color/depth traffic actually reaches DRAM.
        let mut cfg = GpuConfig::mali450_like();
        cfg.render_mode = mode;
        let viewport = cfg.viewport;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut gpu = Gpu::new(cfg);
        let trace = renderer.render_frame(&overdraw_frame(), &shaders());
        gpu.simulate_frame(&trace, &shaders())
    }

    #[test]
    fn imr_generates_more_dram_traffic_than_tbr() {
        let tbr = run(RenderMode::TileBased);
        let imr = run(RenderMode::Immediate);
        // The §II-A claim: TBR avoids the per-fragment off-chip color
        // traffic; IMR writes every shaded fragment (including the
        // overdrawn layer) to memory.
        assert!(
            imr.dram_accesses() > tbr.dram_accesses(),
            "imr {} vs tbr {}",
            imr.dram_accesses(),
            tbr.dram_accesses()
        );
        assert_eq!(imr.tile_cache_accesses(), 0, "IMR has no tiling engine");
        assert!(tbr.tile_cache_accesses() > 0);
    }

    #[test]
    fn tbdr_shades_fewer_fragments_than_tbr_under_overdraw() {
        let tbr = run(RenderMode::TileBased);
        let tbdr = run(RenderMode::TileBasedDeferred);
        assert!(
            tbdr.activity.fragments_shaded < tbr.activity.fragments_shaded,
            "tbdr {} vs tbr {}",
            tbdr.activity.fragments_shaded,
            tbr.activity.fragments_shaded
        );
        assert!(tbdr.activity.fragments_hsr_culled > 0);
        assert!(tbdr.instructions < tbr.instructions);
    }

    #[test]
    fn all_modes_produce_consistent_clock_accounting() {
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let stats = run(mode);
            assert!(stats.cycles >= stats.geometry_cycles + stats.raster_cycles);
            assert!(stats.cycles > 0, "{mode:?}");
        }
    }
}
