//! Prints Fig. 5 (similarity matrix of bbr1) and writes the full-size
//! PGM image to the output directory.
use megsim_bench::{compute_benchmark, Context, ExperimentArgs};
use megsim_workloads::BENCHMARKS;

fn main() {
    let mut args = ExperimentArgs::from_env();
    if args.benchmarks.is_empty() {
        args.benchmarks = vec!["bbr1".to_string()];
    }
    let alias = args.benchmarks[0].clone();
    let ctx = Context::new(args);
    let info = BENCHMARKS
        .iter()
        .find(|b| b.alias == alias)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark: {alias}");
            std::process::exit(2);
        });
    let d = compute_benchmark(&ctx, info);
    print!("{}", megsim_bench::experiments::fig5(&d, &ctx.megsim, 60));
    let sim = megsim_bench::experiments::similarity_of(&d, &ctx.megsim);
    std::fs::create_dir_all(&ctx.args.out_dir).expect("create out dir");
    let path = format!("{}/fig5_{}.pgm", ctx.args.out_dir, alias);
    std::fs::write(&path, sim.to_pgm()).expect("write pgm");
    eprintln!("full-resolution similarity matrix written to {path}");
}
