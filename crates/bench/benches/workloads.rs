//! Workload-generation benchmarks: the retained seed frame generator
//! (`ReferenceWorkload`) vs the memoized-geometry-template fast path,
//! across the full Table II benchmark suite. Generation runs before
//! every characterize/simulate pass, so its cost serializes in front of
//! every other stage PRs 2–4 optimized.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use megsim_core::frame_cache::frame_fingerprint;
use megsim_workloads::{suite, ReferenceWorkload, Workload};

/// Frame scale used for the suite: large enough that per-frame work
/// dominates setup, small enough for a CI smoke run.
const FRAME_SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn bench_generation(c: &mut Criterion) {
    let workloads = suite(FRAME_SCALE, SEED);
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for w in &workloads {
        group.bench_function(format!("reference/{}", w.alias), |b| {
            let r = ReferenceWorkload(w);
            b.iter(|| black_box(r.iter_frames().map(|f| f.draws.len()).sum::<usize>()));
        });
        group.bench_function(format!("optimized/{}", w.alias), |b| {
            b.iter(|| black_box(w.iter_frames().map(|f| f.draws.len()).sum::<usize>()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation
}

/// Best-of-five wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..5)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Asserts the fast path reproduces the seed generator bit for bit
/// (via 128-bit frame fingerprints) before any timing is recorded.
fn assert_identical(w: &Workload) {
    let r = ReferenceWorkload(w);
    for (i, (fast, seed)) in w.iter_frames().zip(r.iter_frames()).enumerate() {
        assert_eq!(
            frame_fingerprint(&fast),
            frame_fingerprint(&seed),
            "{} frame {i}: fast path diverged from the seed generator",
            w.alias
        );
    }
}

/// Measures seed-vs-fast generation single-threaded per benchmark (so
/// the ratio is pure algorithmic gain: placement memoization, static
/// draw skeletons, exact-capacity draw lists — no thread-count
/// dependence), then the parallel `generate_frames` fan-out, and merges
/// the numbers into `BENCH_5.json` at the repo root.
fn write_bench_summary() {
    let mut entries: Vec<(String, f64)> = Vec::new();
    megsim_exec::set_threads(1);

    let workloads = suite(FRAME_SCALE, SEED);
    let mut ref_total = 0.0;
    let mut opt_total = 0.0;
    for w in &workloads {
        assert_identical(w);
        let r = ReferenceWorkload(w);
        let reference = secs(|| {
            black_box(r.iter_frames().map(|f| f.draws.len()).sum::<usize>());
        });
        let optimized = secs(|| {
            black_box(w.iter_frames().map(|f| f.draws.len()).sum::<usize>());
        });
        println!(
            "workload {} ({} frames): reference {:.4}s, optimized {:.4}s ({:.2}x)",
            w.alias,
            w.frames(),
            reference,
            optimized,
            reference / optimized
        );
        entries.push((format!("workloads_{}_reference_secs", w.alias), reference));
        entries.push((format!("workloads_{}_optimized_secs", w.alias), optimized));
        entries.push((
            format!("workloads_{}_speedup", w.alias),
            reference / optimized,
        ));
        ref_total += reference;
        opt_total += optimized;
    }
    println!(
        "workload suite total: reference {:.4}s, optimized {:.4}s ({:.2}x)",
        ref_total,
        opt_total,
        ref_total / opt_total
    );
    entries.push(("workloads_suite_reference_secs".to_string(), ref_total));
    entries.push(("workloads_suite_optimized_secs".to_string(), opt_total));
    entries.push(("workloads_suite_speedup".to_string(), ref_total / opt_total));

    // Parallel batch synthesis: thread sweep of `generate_frames` over
    // the whole suite. On a 1-core container the ratio is ~1; recorded
    // with the core count so multi-core runs are interpretable.
    let serial = secs(|| {
        for w in &workloads {
            black_box(w.generate_frames().len());
        }
    });
    megsim_exec::set_threads(0); // auto (all cores)
    let parallel = secs(|| {
        for w in &workloads {
            black_box(w.generate_frames().len());
        }
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "workload batch generation: 1 thread {:.4}s, {} cores {:.4}s ({:.2}x)",
        serial,
        cores,
        parallel,
        serial / parallel
    );
    entries.push(("workloads_batch_1t_secs".to_string(), serial));
    entries.push(("workloads_batch_parallel_secs".to_string(), parallel));
    entries.push((
        "workloads_batch_parallel_speedup".to_string(),
        serial / parallel,
    ));
    entries.push(("workloads_batch_cores".to_string(), cores as f64));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json");
    if let Err(e) = megsim_bench::report::merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    benches();
    write_bench_summary();
}
