//! Lloyd's k-means with k-means++ or uniform random initialization.
//!
//! This is the clustering engine of paper §III-E: it partitions the
//! per-frame vectors of characteristics into `k` clusters minimizing the
//! within-cluster sum of squares (WCSS, Eq. 4).
//!
//! Observations live in a contiguous [`PointMatrix`]; the assignment
//! step (the O(n·k·d) hot loop) runs on the `megsim-exec` worker pool
//! when the problem is large enough to pay for it. Parallelism cannot
//! change the result: only integer label assignments are computed
//! concurrently, while every floating-point accumulation (centroid
//! update, WCSS) stays in a fixed sequential order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::PointMatrix;

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors (paper §III-D).
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// D²-weighted seeding (Arthur & Vassilvitskii). Default; this is
    /// what a modern SimPoint-style toolchain uses.
    #[default]
    KMeansPlusPlus,
    /// Uniform random distinct points — the ablation baseline.
    Random,
}

/// Configuration of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: InitMethod,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            init: InitMethod::KMeansPlusPlus,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization method (builder style).
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids (`k` vectors of dimension `d`).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label of each input point.
    pub labels: Vec<usize>,
    /// Within-cluster sum of squares (Eq. 4's objective).
    pub wcss: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Population of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid — the paper's cluster
    /// *representatives* (§III-E): "the selected frame for a cluster is
    /// the one with the lowest distance" to the centroid.
    pub fn representatives(&self, data: &PointMatrix) -> Vec<usize> {
        let mut best: Vec<(usize, f64)> = vec![(usize::MAX, f64::INFINITY); self.k()];
        for (i, point) in data.iter_rows().enumerate() {
            let c = self.labels[i];
            let d = squared_distance(point, &self.centroids[c]);
            if d < best[c].1 {
                best[c] = (i, d);
            }
        }
        best.into_iter().map(|(i, _)| i).collect()
    }
}

/// Runs k-means on `data` (rows are observations).
///
/// # Panics
///
/// Panics if `data` is empty or `config.k` is zero or exceeds the
/// number of points.
pub fn kmeans(data: &PointMatrix, config: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "k-means requires at least one point");
    let n = data.len();
    let dim = data.dim();
    assert!(config.k >= 1 && config.k <= n, "k must be in [1, n]");
    let k = config.k;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Centroids as one flat k×dim buffer, matching the data layout.
    let mut centroids: Vec<f64> = match config.init {
        InitMethod::KMeansPlusPlus => init_plus_plus(data, k, &mut rng),
        InitMethod::Random => init_random(data, k, &mut rng),
    };
    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step — integer outputs only, safe to parallelize.
        assign_labels(data, &centroids, &mut labels);
        // Update step: sequential so float accumulation order is fixed.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (point, &label) in data.iter_rows().zip(&labels) {
            counts[label] += 1;
            for (s, v) in sums[label * dim..(label + 1) * dim].iter_mut().zip(point) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            let slot = c * dim..(c + 1) * dim;
            if counts[c] == 0 {
                // Empty cluster: reseed to the point farthest from its
                // centroid, the standard k-means repair.
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let di = point_centroid_d2(data, i, &centroids, labels[i], dim);
                        let dj = point_centroid_d2(data, j, &centroids, labels[j], dim);
                        di.partial_cmp(&dj).expect("NaN distance")
                    })
                    .expect("non-empty data");
                movement += squared_distance(&centroids[slot.clone()], data.row(far));
                centroids[slot].copy_from_slice(data.row(far));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut delta = 0.0;
            for (s, cur) in sums[slot.clone()].iter().zip(&centroids[slot.clone()]) {
                let d = s * inv - cur;
                delta += d * d;
            }
            movement += delta;
            for (cur, s) in centroids[slot].iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                *cur = s * inv;
            }
        }
        if movement <= config.tolerance {
            break;
        }
    }
    // Final assignment with converged centroids.
    assign_labels(data, &centroids, &mut labels);
    let mut wcss = 0.0;
    for (i, point) in data.iter_rows().enumerate() {
        wcss += squared_distance(point, &centroids[labels[i] * dim..(labels[i] + 1) * dim]);
    }
    KMeansResult {
        centroids: centroids.chunks_exact(dim.max(1)).map(<[f64]>::to_vec).collect(),
        labels,
        wcss,
        iterations,
    }
}

/// Runs `restarts` independently seeded k-means and keeps the lowest
/// WCSS — the paper's multi-seeding robustness protocol, fanned out on
/// the worker pool (restart `r` uses `config.seed ⊕ hash(r)`; ties
/// keep the lowest restart index, so the result is thread-count
/// independent).
///
/// # Panics
///
/// Panics if `restarts` is zero or `data`/`config.k` are invalid.
pub fn kmeans_best_of(data: &PointMatrix, config: &KMeansConfig, restarts: usize) -> KMeansResult {
    assert!(restarts >= 1, "need at least one restart");
    if restarts == 1 {
        return kmeans(data, config);
    }
    let runs = megsim_exec::par_map_range(restarts, |r| {
        let seed = config.seed ^ (r as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
        kmeans(data, &KMeansConfig { seed, ..*config })
    });
    runs.into_iter()
        .reduce(|best, candidate| if candidate.wcss < best.wcss { candidate } else { best })
        .expect("restarts >= 1")
}

fn point_centroid_d2(
    data: &PointMatrix,
    i: usize,
    centroids: &[f64],
    label: usize,
    dim: usize,
) -> f64 {
    squared_distance(data.row(i), &centroids[label * dim..(label + 1) * dim])
}

/// Labels every point with its nearest centroid, on the pool when the
/// problem is big enough to amortize the fan-out.
fn assign_labels(data: &PointMatrix, centroids: &[f64], labels: &mut [usize]) {
    let n = data.len();
    let dim = data.dim().max(1);
    let k = centroids.len() / dim;
    // Threshold: roughly the work of one frame's distance kernel below
    // which spawning threads costs more than it saves.
    const PAR_WORK: usize = 1 << 20;
    if n * k * dim >= PAR_WORK {
        let out = megsim_exec::par_map_range(n, |i| nearest_centroid(data.row(i), centroids, dim).0);
        labels.copy_from_slice(&out);
    } else {
        for (i, point) in data.iter_rows().enumerate() {
            labels[i] = nearest_centroid(point, centroids, dim).0;
        }
    }
}

fn nearest_centroid(point: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
        let d = squared_distance(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn init_random(data: &PointMatrix, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    // Sample k distinct indices (Floyd's algorithm would be fancier; a
    // retry loop is fine at these sizes).
    let mut chosen = Vec::with_capacity(k * data.dim());
    let mut used = std::collections::HashSet::new();
    while used.len() < k {
        let i = rng.gen_range(0..data.len());
        if used.insert(i) {
            chosen.extend_from_slice(data.row(i));
        }
    }
    chosen
}

fn init_plus_plus(data: &PointMatrix, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    let first = rng.gen_range(0..data.len());
    let mut centroids = Vec::with_capacity(k * data.dim());
    centroids.extend_from_slice(data.row(first));
    let mut d2: Vec<f64> = data
        .iter_rows()
        .map(|p| squared_distance(p, data.row(first)))
        .collect();
    let mut count = 1;
    while count < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any point works.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
                idx = i;
            }
            idx
        };
        centroids.extend_from_slice(data.row(next));
        count += 1;
        for (i, p) in data.iter_rows().enumerate() {
            let d = squared_distance(p, data.row(next));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> PointMatrix {
        // Two well-separated 2-D blobs of 5 points each.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + 0.1 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.1 * i as f64, 10.0]);
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn distances_match_hand_computation() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn k1_centroid_is_global_mean() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![2.0], vec![4.0]]);
        let r = kmeans(&data, &KMeansConfig::new(1));
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(r.labels, vec![0, 0, 0]);
        assert!((r.wcss - 8.0).abs() < 1e-12);
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(7));
        // Points alternate blob membership by construction.
        let l0 = r.labels[0];
        for (i, &l) in r.labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(l, l0);
            } else {
                assert_ne!(l, l0);
            }
        }
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        let b = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_init_also_converges() {
        let data = blobs();
        let r = kmeans(
            &data,
            &KMeansConfig::new(2).with_seed(3).with_init(InitMethod::Random),
        );
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![5.0], vec![9.0]]);
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(1));
        assert!(r.wcss < 1e-12);
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn representatives_are_closest_to_centroids() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(0));
        let reps = r.representatives(&data);
        assert_eq!(reps.len(), 2);
        for (c, &rep) in reps.iter().enumerate() {
            let d_rep = squared_distance(data.row(rep), &r.centroids[c]);
            for (i, p) in data.iter_rows().enumerate() {
                if r.labels[i] == c {
                    assert!(d_rep <= squared_distance(p, &r.centroids[c]) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let data = PointMatrix::from_rows(vec![vec![1.0, 1.0]; 6]);
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(9));
        assert_eq!(r.labels.len(), 6);
        assert!(r.wcss < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_k_larger_than_n() {
        let _ = kmeans(
            &PointMatrix::from_rows(vec![vec![1.0]]),
            &KMeansConfig::new(2),
        );
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(4).with_seed(5));
        assert_eq!(r.cluster_sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    fn best_of_never_beats_its_own_runs_and_is_deterministic() {
        let data = blobs();
        let config = KMeansConfig::new(3).with_seed(17);
        let best = kmeans_best_of(&data, &config, 8);
        let again = kmeans_best_of(&data, &config, 8);
        assert_eq!(best, again);
        // The selected run is at least as good as the single-seed run.
        let single = kmeans_best_of(&data, &config, 1);
        assert!(best.wcss <= single.wcss + 1e-12);
    }
}
