//! The random sub-sampling baseline of paper §V-C.
//!
//! For a workload of `N` frames, `k` representatives are drawn — one
//! uniformly at random from each of `k` equal ranges of `N/k` frames —
//! and each is scaled by its range size. Because the technique cannot
//! know how many representatives suffice, `k` grows until the
//! 95 %-confidence maximum relative error over many trials matches a
//! target (MEGsim's own error).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One random draw: `k` (frame index, range size) pairs.
pub fn sample_indices(n_frames: usize, k: usize, rng: &mut SmallRng) -> Vec<(usize, usize)> {
    assert!(k >= 1 && k <= n_frames, "k must be in [1, n]");
    let mut out = Vec::with_capacity(k);
    for r in 0..k {
        let lo = r * n_frames / k;
        let hi = ((r + 1) * n_frames / k).max(lo + 1);
        out.push((rng.gen_range(lo..hi), hi - lo));
    }
    out
}

/// Estimates a metric total from a sample: Σ value × range size.
pub fn estimate_total(samples: &[(usize, usize)], per_frame_metric: &[f64]) -> f64 {
    samples
        .iter()
        .map(|&(i, size)| per_frame_metric[i] * size as f64)
        .sum()
}

/// The maximum relative error at the given confidence over `trials`
/// random draws of `k` representatives (e.g. `confidence = 0.95` drops
/// the worst 5 % of trials, as §V-C does).
///
/// # Panics
///
/// Panics if the metric array is empty or `confidence` is outside
/// `(0, 1]`.
pub fn max_error_at_confidence(
    per_frame_metric: &[f64],
    k: usize,
    trials: usize,
    confidence: f64,
    seed: u64,
) -> f64 {
    assert!(!per_frame_metric.is_empty(), "empty metric series");
    assert!(
        (f64::EPSILON..=1.0).contains(&confidence),
        "confidence must be in (0, 1]"
    );
    let actual: f64 = per_frame_metric.iter().sum();
    // Draw every trial's sample sequentially from the single seeded RNG
    // (the exact stream the sequential implementation produced), then
    // score the trials on the worker pool — per-trial work depends only
    // on the pre-drawn sample, so results are thread-count independent.
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<Vec<(usize, usize)>> = (0..trials)
        .map(|_| sample_indices(per_frame_metric.len(), k, &mut rng))
        .collect();
    // Scoring a trial is O(k); only fan out when the total work is
    // large enough to amortize waking the pool.
    const PAR_WORK: usize = 1 << 16;
    let score = |s: &Vec<(usize, usize)>| {
        let est = estimate_total(s, per_frame_metric);
        megsim_stats::relative_error(est, actual)
    };
    let mut errors: Vec<f64> = if trials * k >= PAR_WORK {
        megsim_exec::par_map_indexed(&samples, |_, s| score(s))
    } else {
        samples.iter().map(score).collect()
    };
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let idx = ((errors.len() as f64 * confidence).ceil() as usize).clamp(1, errors.len()) - 1;
    errors[idx]
}

/// Smallest `k` whose 95 %-confidence max error matches `target` — the
/// §V-C procedure producing Table IV's "Random sub-sampling frames".
///
/// `k` is grown geometrically (×1.2) then refined by binary search, so
/// sequences of thousands of frames stay cheap. Returns `n_frames` if
/// even full sampling cannot reach the target (it always can: `k = n`
/// has zero error).
pub fn frames_needed_for_target(
    per_frame_metric: &[f64],
    target_error: f64,
    trials: usize,
    confidence: f64,
    seed: u64,
) -> usize {
    let n = per_frame_metric.len();
    let err_of = |k: usize| max_error_at_confidence(per_frame_metric, k, trials, confidence, seed);
    // Geometric bracket.
    let mut lo = 1usize;
    let mut hi = 1usize;
    while hi < n && err_of(hi) > target_error {
        lo = hi;
        hi = ((hi as f64 * 1.2).ceil() as usize + 1).min(n);
    }
    if hi >= n && err_of(n) > target_error {
        return n;
    }
    // Binary search in (lo, hi]: err(hi) ≤ target < err(lo).
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if err_of(mid) > target_error {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn samples_partition_the_sequence() {
        let s = sample_indices(100, 4, &mut rng());
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().map(|&(_, sz)| sz).sum::<usize>(), 100);
        for (r, &(i, _)) in s.iter().enumerate() {
            assert!(i >= r * 25 && i < (r + 1) * 25);
        }
    }

    #[test]
    fn uneven_ranges_still_cover_everything() {
        let s = sample_indices(10, 3, &mut rng());
        assert_eq!(s.iter().map(|&(_, sz)| sz).sum::<usize>(), 10);
    }

    #[test]
    fn constant_series_has_zero_error() {
        let metric = vec![5.0; 50];
        let err = max_error_at_confidence(&metric, 3, 100, 0.95, 1);
        assert!(err < 1e-12);
    }

    #[test]
    fn full_sampling_has_zero_error() {
        let metric: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let err = max_error_at_confidence(&metric, 20, 50, 0.95, 1);
        assert!(err < 1e-12);
    }

    #[test]
    fn error_decreases_with_k() {
        let metric: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64 + 1.0).collect();
        let e2 = max_error_at_confidence(&metric, 2, 300, 0.95, 1);
        let e50 = max_error_at_confidence(&metric, 50, 300, 0.95, 1);
        assert!(e50 < e2, "e2 = {e2}, e50 = {e50}");
    }

    #[test]
    fn frames_needed_matches_direct_check() {
        let metric: Vec<f64> = (0..300)
            .map(|i| if (i / 30) % 2 == 0 { 10.0 } else { 100.0 })
            .collect();
        let target = 0.05;
        let k = frames_needed_for_target(&metric, target, 200, 0.95, 3);
        assert!((1..=300).contains(&k));
        let err = max_error_at_confidence(&metric, k, 200, 0.95, 3);
        assert!(err <= target, "err at k = {err}");
        if k > 1 {
            // One fewer representative should miss the target (within
            // the bracket the search explored).
            let err_prev = max_error_at_confidence(&metric, k - 1, 200, 0.95, 3);
            assert!(err_prev > target, "err at k-1 = {err_prev}");
        }
    }

    #[test]
    fn needy_series_needs_more_frames_than_flat_one() {
        let flat = vec![10.0; 400];
        let spiky: Vec<f64> = (0..400)
            .map(|i| if i % 97 == 0 { 1000.0 } else { 10.0 })
            .collect();
        let kf = frames_needed_for_target(&flat, 0.02, 100, 0.95, 5);
        let ks = frames_needed_for_target(&spiky, 0.02, 100, 0.95, 5);
        assert!(ks > kf, "spiky {ks} vs flat {kf}");
    }
}
