//! Property tests of the GL trace layer: record/replay fidelity on real
//! workloads and decoder robustness against arbitrary bytes.

use proptest::prelude::*;

use megsim_gl::{decode, encode, play, record_sequence};
use megsim_workloads::{build, BENCHMARKS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full TEAPOT-style loop — record a workload, write the trace
    /// file, read it back, replay — must reproduce every draw call.
    #[test]
    fn workload_trace_roundtrip(bench in 0usize..8, seed in 0u64..50) {
        let w = build(&BENCHMARKS[bench], 0.002, seed);
        let frames: Vec<_> = w.iter_frames().collect();
        let stream = record_sequence(w.shaders(), &frames);
        let bytes = encode(&stream);
        let decoded = decode(&bytes).expect("self-produced trace decodes");
        prop_assert_eq!(&stream, &decoded);
        let replay = play(&decoded).expect("self-produced trace plays");
        prop_assert_eq!(replay.frames.len(), frames.len());
        prop_assert_eq!(replay.shaders.vertex_count(), w.shaders().vertex_count());
        prop_assert_eq!(replay.shaders.fragment_count(), w.shaders().fragment_count());
        for (orig, back) in frames.iter().zip(&replay.frames) {
            prop_assert_eq!(orig.draws.len(), back.draws.len());
            for (a, b) in orig.draws.iter().zip(&back.draws) {
                prop_assert_eq!(&*a.mesh, &*b.mesh);
                prop_assert_eq!(a.transform, b.transform);
                prop_assert_eq!(a.vertex_shader, b.vertex_shader);
                prop_assert_eq!(a.fragment_shader, b.fragment_shader);
                prop_assert_eq!(a.texture, b.texture);
                prop_assert_eq!(a.blend, b.blend);
                prop_assert_eq!(a.depth_test, b.depth_test);
            }
        }
    }

    /// The decoder must never panic on arbitrary input.
    #[test]
    fn decoder_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Bit-flipping a valid trace must either decode to *something* or
    /// fail cleanly — never panic.
    #[test]
    fn decoder_survives_corruption(bench in 0usize..4, flip in 0usize..4096, bit in 0u8..8) {
        let w = build(&BENCHMARKS[bench], 0.001, 3);
        let frames: Vec<_> = w.iter_frames().take(3).collect();
        let stream = record_sequence(w.shaders(), &frames);
        let mut bytes = encode(&stream).to_vec();
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = decode(&bytes);
    }
}
