//! Property-based tests (proptest) over the core data structures and
//! algorithms of the workspace.

use proptest::prelude::*;

use megsim_cluster::{bic_score, euclidean_distance, kmeans, KMeansConfig, PointMatrix};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_core::{normalize, FeatureMatrix, GroupWeights, SimilarityMatrix};
use megsim_mem::{Cache, CacheConfig, Dram, DramConfig};
use megsim_stats::{mean, pearson, quantile, relative_error, variance};

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn pearson_stays_in_unit_interval(
        xs in prop::collection::vec(-1e6f64..1e6, 2..64),
        ys in prop::collection::vec(-1e6f64..1e6, 2..64),
    ) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn quantile_is_bounded_by_extremes(
        xs in prop::collection::vec(-1e9f64..1e9, 1..128),
        q in 0.0f64..=1.0,
    ) {
        let v = quantile(&xs, q);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        xs in prop::collection::vec(-1e6f64..1e6, 1..64),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn variance_is_non_negative(xs in prop::collection::vec(-1e6f64..1e6, 0..64)) {
        prop_assert!(variance(&xs) >= 0.0);
    }

    #[test]
    fn mean_is_within_range(xs in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let m = mean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn relative_error_is_zero_iff_equal(truth in -1e9f64..1e9) {
        prop_assume!(truth != 0.0);
        prop_assert_eq!(relative_error(truth, truth), 0.0);
        prop_assert!(relative_error(truth * 1.5, truth) > 0.0);
    }
}

// ---------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..6).prop_flat_map(|dim| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim..=dim), 3..40)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_labels_are_valid_and_partition(points in points_strategy(), k in 1usize..5) {
        let points = PointMatrix::from_rows(points);
        let k = k.min(points.len());
        let result = kmeans(&points, &KMeansConfig::new(k).with_seed(3));
        prop_assert_eq!(result.labels.len(), points.len());
        prop_assert!(result.labels.iter().all(|&l| l < k));
        prop_assert_eq!(result.cluster_sizes().iter().sum::<usize>(), points.len());
        prop_assert!(result.wcss >= 0.0);
    }

    #[test]
    fn kmeans_assigns_each_point_to_its_nearest_centroid(points in points_strategy()) {
        let points = PointMatrix::from_rows(points);
        let k = 3.min(points.len());
        let result = kmeans(&points, &KMeansConfig::new(k).with_seed(9));
        for (i, p) in points.iter_rows().enumerate() {
            let own = euclidean_distance(p, &result.centroids[result.labels[i]]);
            for c in &result.centroids {
                prop_assert!(own <= euclidean_distance(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn more_clusters_never_increase_wcss_much(points in points_strategy()) {
        // WCSS at k+1 with a good seed should not exceed WCSS at k by
        // more than numerical noise (k-means++ keeps it monotone-ish;
        // we assert a loose 10% bound to avoid flaky strictness).
        let points = PointMatrix::from_rows(points);
        let k = 2.min(points.len());
        let a = kmeans(&points, &KMeansConfig::new(k).with_seed(5));
        let b = kmeans(&points, &KMeansConfig::new((k + 1).min(points.len())).with_seed(5));
        prop_assert!(b.wcss <= a.wcss * 1.1 + 1e-6);
    }

    #[test]
    fn bic_is_finite_or_neg_infinity(points in points_strategy()) {
        let points = PointMatrix::from_rows(points);
        let k = 2.min(points.len());
        let result = kmeans(&points, &KMeansConfig::new(k).with_seed(1));
        let score = bic_score(&points, &result);
        prop_assert!(score.is_finite() || score == f64::NEG_INFINITY);
    }
}

// ---------------------------------------------------------------------
// Similarity matrix
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn similarity_is_a_metric_sample(points in points_strategy()) {
        let m = SimilarityMatrix::from_vectors(&points);
        let n = points.len();
        for i in 0..n.min(6) {
            prop_assert_eq!(m.distance(i, i), 0.0);
            for j in 0..n.min(6) {
                prop_assert_eq!(m.distance(i, j), m.distance(j, i));
                prop_assert!(m.distance(i, j) >= 0.0);
                // Triangle inequality through point 0.
                prop_assert!(m.distance(i, j) <= m.distance(i, 0) + m.distance(0, j) + 1e-9);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Normalization & selection
// ---------------------------------------------------------------------

fn matrix_strategy() -> impl Strategy<Value = FeatureMatrix> {
    (1usize..4, 1usize..4, 2usize..24).prop_flat_map(|(p, q, n)| {
        prop::collection::vec(prop::collection::vec(0.0f64..1e5, p + q + 1), n..=n)
            .prop_map(move |rows| FeatureMatrix::from_rows(rows, p, q))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalization_preserves_shape_and_finiteness(m in matrix_strategy()) {
        let norm = normalize(&m, &GroupWeights::paper());
        prop_assert_eq!(norm.len(), m.frames());
        prop_assert_eq!(norm.dim(), m.dim());
        for row in norm.iter_rows() {
            prop_assert_eq!(row.len(), m.dim());
            prop_assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn selection_always_partitions_frames(m in matrix_strategy()) {
        let sel = select_representatives(&m, &MegsimConfig::default());
        prop_assert!(sel.k() >= 1);
        prop_assert!(sel.k() <= m.frames());
        let sum: usize = sel.representatives.iter().map(|r| r.cluster_size).sum();
        prop_assert_eq!(sum, m.frames());
        for rep in &sel.representatives {
            prop_assert!(rep.frame_index < m.frames());
        }
    }
}

// ---------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_hits_after_access(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::new("p", 4096, 64, 2, 1, 1));
        for &a in &addrs {
            cache.access(a, false);
            // Immediately re-accessing the same address must hit.
            prop_assert!(cache.access(a, false).hit);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses());
        prop_assert!(s.misses <= addrs.len() as u64);
    }

    #[test]
    fn dram_time_is_monotone(
        addrs in prop::collection::vec(0u64..1_000_000u64, 1..100),
    ) {
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0u64;
        let mut last_ready = 0u64;
        for &a in &addrs {
            let acc = dram.access(a & !63, now, false);
            prop_assert!(acc.ready_at > now);
            prop_assert!(acc.ready_at >= last_ready, "bus is serialized");
            last_ready = acc.ready_at;
            now += 7;
        }
        prop_assert_eq!(dram.stats().accesses(), addrs.len() as u64);
    }
}
