//! # megsim-timing
//!
//! The cycle-level Tile-Based Rendering GPU model of the MEGsim
//! reproduction — the role TEAPOT's cycle-accurate simulator plays in
//! the paper. It consumes the per-frame [`megsim_funcsim::FrameTrace`]
//! produced by the functional renderer, models the Table I machine
//! (four Vertex Processors, four Fragment Processors, the Tiling
//! Engine, the Fig. 1 cache hierarchy and a banked LPDDR-style DRAM)
//! and reports the statistics the paper's accuracy study evaluates:
//! total cycles, DRAM accesses, L2 accesses and Tile-cache accesses.
//!
//! ```
//! use megsim_timing::{Gpu, GpuConfig};
//! use megsim_funcsim::{Renderer, RenderConfig};
//! use megsim_gfx::prelude::*;
//!
//! let config = GpuConfig::small(128, 128);
//! let viewport = config.viewport;
//! let mut gpu = Gpu::new(config);
//!
//! let mut shaders = ShaderTable::new();
//! shaders.add(ShaderProgram::vertex(0, "vs", 10));
//! shaders.add(ShaderProgram::fragment(0, "fs", 8, vec![]));
//! let trace = Renderer::new(RenderConfig::tbr(viewport))
//!     .render_frame(&Frame::new(), &shaders);
//! let stats = gpu.simulate_frame(&trace, &shaders);
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod gpu;
pub mod multi_gpu;
pub(crate) mod shard;
pub mod stats;
#[cfg(any(test, feature = "reference"))]
pub mod timing_reference;

pub use config::{GpuConfig, QueueConfig};
pub use gpu::{Gpu, ShardMode};
pub use multi_gpu::{DispatchMode, MultiGpu, MultiGpuConfig, MultiGpuReport, WorkDistributor};
// The rig's topology and link knobs are part of its configuration
// surface; re-exported so downstream crates need no megsim-mem dep.
pub use megsim_mem::{LinkConfig, Topology};
pub use stats::{FrameStats, SequenceStats, UnitBusy};
#[cfg(any(test, feature = "reference"))]
pub use timing_reference::ReferenceGpu;
