//! The content-addressed frame cache is a pure wall-clock optimization:
//! every pipeline output must be **bit-identical** with the cache on or
//! off, cold or warm, at any worker-pool thread count — and a warm
//! re-run must actually hit.
//!
//! Everything lives in ONE `#[test]` because the cache-enabled flag and
//! the worker-pool size are process-global: parallel test functions
//! toggling them would race each other.

use megsim_core::evaluate::{
    characterize_sequence, evaluate_megsim, simulate_representatives, simulate_sequence,
};
use megsim_core::frame_cache;
use megsim_core::pipeline::MegsimConfig;
use megsim_timing::{FrameStats, GpuConfig};
use megsim_workloads::by_alias;

/// Everything the flow produces, flattened for exact comparison.
#[derive(PartialEq, Debug)]
struct FlowArtifacts {
    features: Vec<f64>,
    per_frame: Vec<FrameStats>,
    representatives: Vec<(usize, usize)>,
    rep_stats: Vec<FrameStats>,
    estimated: FrameStats,
}

fn run_flow() -> FlowArtifacts {
    let workload = by_alias("pvz", 0.01, 42).expect("known alias"); // 50 frames
    let gpu = GpuConfig::small(192, 192);
    let config = MegsimConfig::default();
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
    let run = evaluate_megsim(&matrix, &per_frame, &config);
    let rep_stats = simulate_representatives(
        |i| workload.frame(i),
        &run.selection,
        workload.shaders(),
        &gpu,
    );
    FlowArtifacts {
        features: matrix.rows.as_slice().to_vec(),
        per_frame,
        representatives: run
            .selection
            .representatives
            .iter()
            .map(|r| (r.frame_index, r.cluster_size))
            .collect(),
        rep_stats,
        estimated: run.estimated,
    }
}

#[test]
fn cache_state_and_thread_count_never_change_results() {
    let mut runs = Vec::new();
    for enabled in [false, true] {
        for threads in [1usize, 8] {
            frame_cache::set_enabled(enabled);
            frame_cache::clear();
            megsim_exec::set_threads(threads);
            runs.push(((enabled, threads), run_flow()));
        }
    }

    let ((_, _), baseline) = &runs[0];
    for ((enabled, threads), r) in &runs[1..] {
        assert_eq!(
            baseline, r,
            "pipeline output differs with cache={enabled} at {threads} threads"
        );
    }

    // A cold enabled run already hits: the representatives simulated
    // standalone were cached during the full-sequence pass.
    frame_cache::set_enabled(true);
    frame_cache::clear();
    let cold = run_flow();
    let report = frame_cache::report();
    assert!(
        report.stats_hits > 0,
        "representative re-simulation should hit the stats cache: {}",
        report.summary()
    );
    assert!(report.stats_entries > 0 && report.activity_entries > 0);

    // A warm re-run hits on both caches and still matches bit-for-bit.
    let warm = run_flow();
    assert_eq!(&cold, &warm, "warm cache run diverged from cold run");
    let report = frame_cache::report();
    assert!(
        report.activity_hits > 0,
        "warm characterization should hit the activity cache: {}",
        report.summary()
    );
    assert!(report.hit_rate() > 0.0);

    megsim_exec::set_threads(0);
    frame_cache::set_enabled(true);
    frame_cache::clear();
}
