//! Lloyd's k-means with k-means++ or uniform random initialization.
//!
//! This is the clustering engine of paper §III-E: it partitions the
//! per-frame vectors of characteristics into `k` clusters minimizing the
//! within-cluster sum of squares (WCSS, Eq. 4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors (paper §III-D).
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// D²-weighted seeding (Arthur & Vassilvitskii). Default; this is
    /// what a modern SimPoint-style toolchain uses.
    #[default]
    KMeansPlusPlus,
    /// Uniform random distinct points — the ablation baseline.
    Random,
}

/// Configuration of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: InitMethod,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            init: InitMethod::KMeansPlusPlus,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization method (builder style).
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids (`k` vectors of dimension `d`).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label of each input point.
    pub labels: Vec<usize>,
    /// Within-cluster sum of squares (Eq. 4's objective).
    pub wcss: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Population of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid — the paper's cluster
    /// *representatives* (§III-E): "the selected frame for a cluster is
    /// the one with the lowest distance" to the centroid.
    pub fn representatives(&self, data: &[Vec<f64>]) -> Vec<usize> {
        let mut best: Vec<(usize, f64)> = vec![(usize::MAX, f64::INFINITY); self.k()];
        for (i, point) in data.iter().enumerate() {
            let c = self.labels[i];
            let d = squared_distance(point, &self.centroids[c]);
            if d < best[c].1 {
                best[c] = (i, d);
            }
        }
        best.into_iter().map(|(i, _)| i).collect()
    }
}

/// Runs k-means on `data` (rows are observations).
///
/// # Panics
///
/// Panics if `data` is empty, rows have inconsistent dimensions, or
/// `config.k` is zero or exceeds the number of points.
pub fn kmeans(data: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!data.is_empty(), "k-means requires at least one point");
    let dim = data[0].len();
    assert!(
        data.iter().all(|p| p.len() == dim),
        "inconsistent point dimensions"
    );
    assert!(
        config.k >= 1 && config.k <= data.len(),
        "k must be in [1, n]"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut centroids = match config.init {
        InitMethod::KMeansPlusPlus => init_plus_plus(data, config.k, &mut rng),
        InitMethod::Random => init_random(data, config.k, &mut rng),
    };
    let mut labels = vec![0usize; data.len()];
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        for (i, point) in data.iter().enumerate() {
            labels[i] = nearest_centroid(point, &centroids).0;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (point, &label) in data.iter().zip(&labels) {
            counts[label] += 1;
            for (s, v) in sums[label].iter_mut().zip(point) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                // Empty cluster: reseed to the point farthest from its
                // centroid, the standard k-means repair.
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        let di = squared_distance(p, &centroids[labels[*i]]);
                        let dj = squared_distance(q, &centroids[labels[*j]]);
                        di.partial_cmp(&dj).expect("NaN distance")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty data");
                movement += squared_distance(&centroids[c], &data[far]);
                centroids[c] = data[far].clone();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += squared_distance(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= config.tolerance {
            break;
        }
    }
    // Final assignment with converged centroids.
    let mut wcss = 0.0;
    for (i, point) in data.iter().enumerate() {
        let (label, d2) = nearest_centroid(point, &centroids);
        labels[i] = label;
        wcss += d2;
    }
    KMeansResult {
        centroids,
        labels,
        wcss,
        iterations,
    }
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_distance(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn init_random(data: &[Vec<f64>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    // Sample k distinct indices (Floyd's algorithm would be fancier; a
    // retry loop is fine at these sizes).
    let mut chosen = Vec::with_capacity(k);
    let mut used = std::collections::HashSet::new();
    while chosen.len() < k {
        let i = rng.gen_range(0..data.len());
        if used.insert(i) {
            chosen.push(data[i].clone());
        }
    }
    chosen
}

fn init_plus_plus(data: &[Vec<f64>], k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    let first = rng.gen_range(0..data.len());
    let mut centroids = vec![data[first].clone()];
    let mut d2: Vec<f64> = data
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any point works.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
                idx = i;
            }
            idx
        };
        centroids.push(data[next].clone());
        for (i, p) in data.iter().enumerate() {
            let d = squared_distance(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Two well-separated 2-D blobs of 5 points each.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + 0.1 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.1 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn distances_match_hand_computation() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn k1_centroid_is_global_mean() {
        let data = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&data, &KMeansConfig::new(1));
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(r.labels, vec![0, 0, 0]);
        assert!((r.wcss - 8.0).abs() < 1e-12);
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(7));
        // Points alternate blob membership by construction.
        let l0 = r.labels[0];
        for (i, &l) in r.labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(l, l0);
            } else {
                assert_ne!(l, l0);
            }
        }
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        let b = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_init_also_converges() {
        let data = blobs();
        let r = kmeans(
            &data,
            &KMeansConfig::new(2).with_seed(3).with_init(InitMethod::Random),
        );
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let data = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(1));
        assert!(r.wcss < 1e-12);
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn representatives_are_closest_to_centroids() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(0));
        let reps = r.representatives(&data);
        assert_eq!(reps.len(), 2);
        for (c, &rep) in reps.iter().enumerate() {
            let d_rep = squared_distance(&data[rep], &r.centroids[c]);
            for (i, p) in data.iter().enumerate() {
                if r.labels[i] == c {
                    assert!(d_rep <= squared_distance(p, &r.centroids[c]) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let data = vec![vec![1.0, 1.0]; 6];
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(9));
        assert_eq!(r.labels.len(), 6);
        assert!(r.wcss < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_k_larger_than_n() {
        let _ = kmeans(&[vec![1.0]], &KMeansConfig::new(2));
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(4).with_seed(5));
        assert_eq!(r.cluster_sizes().iter().sum::<usize>(), data.len());
    }
}
