//! Offline vendored subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the little-endian [`Buf`] /
//! [`BufMut`] accessors the GL trace codec uses. Backed by plain
//! `Vec<u8>` — no refcounted buffer sharing — which is sufficient for
//! the encode-once / decode-once trace workflow.
//!
//! # Panics
//!
//! Like upstream, the `get_*` methods panic when the buffer has fewer
//! bytes than requested; callers guard with [`Buf::remaining`].

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = BytesMut::with_capacity(32);
        out.put_u8(0xAB);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f32_le(1.5);
        out.put_slice(b"xyz");
        let frozen = out.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_f32_le(), 1.5);
        let mut tail = [0u8; 3];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
