//! The machine description of Table I.

use serde::{Deserialize, Serialize};

use megsim_funcsim::RenderMode;
use megsim_gfx::draw::Viewport;
use megsim_mem::{CacheConfig, DramConfig};

/// Fixed-size hardware queue description (Table I "Queues").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Number of entries.
    pub entries: u32,
    /// Bytes per entry.
    pub entry_bytes: u32,
}

/// The full GPU configuration (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Core frequency in MHz (600).
    pub frequency_mhz: u32,
    /// Core voltage in volts (1.0).
    pub voltage: f32,
    /// Technology node in nm (22).
    pub technology_nm: u32,
    /// Render target + tile geometry (1440×720, 32×32 tiles).
    pub viewport: Viewport,
    /// Rendering architecture (TBR baseline, TBDR with HSR, or IMR).
    pub render_mode: RenderMode,
    /// Vertex input/output queues (16 × 136 B).
    pub vertex_queue: QueueConfig,
    /// Triangle & tile queues (16 × 388 B).
    pub triangle_queue: QueueConfig,
    /// Fragment queue (64 × 233 B).
    pub fragment_queue: QueueConfig,
    /// Color queue (64 × 24 B).
    pub color_queue: QueueConfig,
    /// Vertex cache (4 KiB, 1 bank, 1 cycle).
    pub vertex_cache: CacheConfig,
    /// Each of the 4 texture caches (8 KiB, 1 bank, 2 cycles).
    pub texture_cache: CacheConfig,
    /// Tile cache (32 KiB, 1 bank, 2 cycles) — caches the Tiling
    /// Engine's polygon lists.
    pub tile_cache: CacheConfig,
    /// Shared L2 (256 KiB, 8 banks, 18 cycles).
    pub l2: CacheConfig,
    /// Main memory (LPDDR3-like, Table I).
    pub dram: DramConfig,
    /// Number of Vertex Processors (4).
    pub vertex_processors: usize,
    /// Number of Fragment Processors (4).
    pub fragment_processors: usize,
    /// Shader instructions a Vertex Processor issues per cycle (the
    /// Mali-400 series GP is a VLIW machine; 2 models its dual issue).
    pub vertex_issue_width: u64,
    /// Shader instructions a Fragment Processor issues per cycle (the
    /// Mali-400 series PP is VLIW; 2 models its multi-issue datapath).
    pub fragment_issue_width: u64,
    /// Primitive Assembly throughput: cycles per vertex (1).
    pub prim_assembly_cycles_per_vertex: u64,
    /// Rasterizer throughput: cycles per interpolated attribute (1).
    pub rasterizer_cycles_per_attribute: u64,
    /// Early Z-Test in-flight quad-fragments (8) — the latency-hiding
    /// depth of the quad pipeline.
    pub early_z_in_flight: u64,
    /// Miss-latency hiding window of a Fragment Processor's texture
    /// pipe, in cycles: how far the pipe's issue stream may run ahead of
    /// the memory system before it stalls (models ~8 outstanding quad
    /// misses of memory-level parallelism).
    pub texture_miss_stall_cap: u64,
    /// Posted-write window of the tile flush engine, in cycles (the
    /// 64-entry Color queue of Table I draining 16-cycle bursts).
    pub flush_write_window: u64,
    /// Posted-write window of the Polygon List Builder, in cycles.
    pub plb_write_window: u64,
    /// Fixed per-frame overhead (command processing, swap) in cycles.
    pub frame_overhead_cycles: u64,
}

impl GpuConfig {
    /// The Arm Mali-450-like baseline of Table I.
    pub fn mali450_like() -> Self {
        Self {
            frequency_mhz: 600,
            voltage: 1.0,
            technology_nm: 22,
            viewport: Viewport::MALI450_BASELINE,
            render_mode: RenderMode::TileBased,
            vertex_queue: QueueConfig {
                entries: 16,
                entry_bytes: 136,
            },
            triangle_queue: QueueConfig {
                entries: 16,
                entry_bytes: 388,
            },
            fragment_queue: QueueConfig {
                entries: 64,
                entry_bytes: 233,
            },
            color_queue: QueueConfig {
                entries: 64,
                entry_bytes: 24,
            },
            vertex_cache: CacheConfig::new("VertexCache", 4 * 1024, 64, 2, 1, 1),
            texture_cache: CacheConfig::new("TextureCache", 8 * 1024, 64, 2, 1, 2),
            tile_cache: CacheConfig::new("TileCache", 32 * 1024, 64, 2, 1, 2),
            l2: CacheConfig::new("L2", 256 * 1024, 64, 2, 8, 18),
            dram: DramConfig::lpddr3_baseline(),
            vertex_processors: 4,
            fragment_processors: 4,
            vertex_issue_width: 2,
            fragment_issue_width: 2,
            prim_assembly_cycles_per_vertex: 1,
            rasterizer_cycles_per_attribute: 1,
            early_z_in_flight: 8,
            texture_miss_stall_cap: 256,
            flush_write_window: 2048,
            plb_write_window: 256,
            frame_overhead_cycles: 1000,
        }
    }

    /// Same machine with a smaller render target (fast tests).
    pub fn small(width: u32, height: u32) -> Self {
        let mut c = Self::mali450_like();
        c.viewport = Viewport::new(width, height, 32);
        c
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::mali450_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = GpuConfig::mali450_like();
        assert_eq!(c.frequency_mhz, 600);
        assert_eq!(c.viewport.width, 1440);
        assert_eq!(c.viewport.height, 720);
        assert_eq!(c.viewport.tile_size, 32);
        assert_eq!(c.vertex_cache.size_bytes, 4 * 1024);
        assert_eq!(c.texture_cache.size_bytes, 8 * 1024);
        assert_eq!(c.tile_cache.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.latency, 18);
        assert_eq!(c.l2.banks, 8);
        assert_eq!(c.vertex_processors, 4);
        assert_eq!(c.fragment_processors, 4);
        assert_eq!(c.early_z_in_flight, 8);
        assert_eq!(c.vertex_queue.entries, 16);
        assert_eq!(c.fragment_queue.entries, 64);
        assert_eq!(c.fragment_queue.entry_bytes, 233);
    }

    #[test]
    fn default_mode_is_tile_based() {
        assert_eq!(GpuConfig::mali450_like().render_mode, RenderMode::TileBased);
    }

    #[test]
    fn small_config_only_changes_viewport() {
        let c = GpuConfig::small(160, 120);
        assert_eq!(c.viewport.width, 160);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
    }
}
