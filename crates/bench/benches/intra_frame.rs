//! Intra-frame parallel timing benchmark: the tile-sharded
//! record/replay raster phase (PR 6) against the sequential tile loop,
//! swept over 1/2/max worker threads, plus the same sweep for the
//! warm-sequence render/timing pipeline. Both parallel paths are
//! bit-identical to their sequential baselines at every point of the
//! sweep (pinned by `tests/determinism.rs`), so the curve measures
//! pure overlap.
//!
//! Results merge into `BENCH_6.json` at the repo root. Every speedup is
//! recorded next to `intra_frame_available_parallelism`: on a 1-core
//! runner overlap is impossible and ~1.0× (or slightly below, from
//! record-stage overhead) is the expected reading — the printed note
//! and the recorded core count keep that from masquerading as a
//! regression or a win.

use std::time::Instant;

use megsim_bench::report::{available_cores, core_note, merge_bench_json};
use megsim_funcsim::{FrameTrace, RenderConfig, RenderMode, Renderer};
use megsim_timing::{Gpu, GpuConfig, ShardMode};
use megsim_workloads::by_alias;

const MODES: [(&str, RenderMode); 3] = [
    ("tbr", RenderMode::TileBased),
    ("tbdr", RenderMode::TileBasedDeferred),
    ("imr", RenderMode::Immediate),
];

/// Best-of-three wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The 1/2/4/max thread sweep. On a 1-core box max is clamped to 2 so
/// the curve still has an oversubscribed point (documenting the
/// overhead of sharding without parallelism, which the Auto policy
/// avoids); the 4-thread point — the CI scaling gate's reading — is
/// only swept when 4 cores are actually available.
fn sweep_points(cores: usize) -> Vec<usize> {
    let mut points = vec![1, 2];
    if cores >= 4 {
        points.push(4);
    }
    if cores.max(2) > *points.last().expect("non-empty") {
        points.push(cores.max(2));
    }
    points
}

fn main() {
    let cores = available_cores();
    let sweep = sweep_points(cores);
    let mut entries: Vec<(String, f64)> = vec![
        (
            "intra_frame_available_parallelism".to_string(),
            cores as f64,
        ),
        (
            "intra_frame_thread_sweep_max".to_string(),
            *sweep.last().expect("non-empty sweep") as f64,
        ),
    ];

    // Tile-sharded timing: simulate a warm trace sequence per render
    // mode with the raster phase forced onto the record/replay path at
    // each thread count, against the sequential loop as baseline.
    let workload = by_alias("bbr1", 0.01, 7).expect("known alias");
    let shaders = workload.shaders();
    let mut best_t4_speedup = 0.0f64;
    for (name, mode) in MODES {
        let mut cfg = GpuConfig::mali450_like();
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig {
            viewport: cfg.viewport,
            mode,
        });
        let traces: Vec<FrameTrace> = workload
            .iter_frames()
            .map(|f| renderer.render_frame(&f, shaders))
            .collect();
        let n = traces.len() as f64;
        let run = |shard: ShardMode| {
            let mut gpu = Gpu::new(cfg.clone());
            gpu.set_shard_mode(shard);
            for t in &traces {
                std::hint::black_box(gpu.simulate_frame(t, shaders).cycles);
            }
        };
        megsim_exec::set_threads(1);
        let sequential = secs(|| run(ShardMode::Off));
        entries.push((
            format!("intra_frame_{name}_sequential_frames_per_sec"),
            n / sequential,
        ));
        for &threads in &sweep {
            megsim_exec::set_threads(threads);
            let sharded = secs(|| run(ShardMode::Force));
            if threads == 4 {
                best_t4_speedup = best_t4_speedup.max(sequential / sharded);
            }
            entries.push((
                format!("intra_frame_{name}_sharded_t{threads}_frames_per_sec"),
                n / sharded,
            ));
            entries.push((
                format!("intra_frame_{name}_shard_speedup_t{threads}"),
                sequential / sharded,
            ));
            println!(
                "intra-frame {name}: sharded t{threads} {:.1} frames/s vs sequential {:.1} ({:.2}x on {cores} core(s)){}",
                n / sharded,
                n / sequential,
                sequential / sharded,
                if threads > 1 { core_note(cores) } else { "" }
            );
        }
        megsim_exec::set_threads(0);
    }

    // Warm-sequence pipeline (render frame N+1 while timing frame N)
    // under the same sweep; at one thread the pipeline degrades to the
    // inline sequential loop, so t1 is its own baseline.
    let cfg = GpuConfig::mali450_like();
    let frames = workload.frames() as f64;
    let mut warm_t1 = f64::NAN;
    for &threads in &sweep {
        megsim_exec::set_threads(threads);
        let warm = secs(|| {
            std::hint::black_box(megsim_core::simulate_sequence_warm(
                workload.iter_frames(),
                workload.shaders(),
                &cfg,
            ));
        });
        if threads == 1 {
            warm_t1 = warm;
        }
        entries.push((
            format!("intra_frame_warm_pipeline_t{threads}_frames_per_sec"),
            frames / warm,
        ));
        entries.push((
            format!("intra_frame_warm_pipeline_speedup_t{threads}"),
            warm_t1 / warm,
        ));
        println!(
            "warm pipeline: t{threads} {:.1} frames/s ({:.2}x vs t1 on {cores} core(s)){}",
            frames / warm,
            warm_t1 / warm,
            if threads > 1 { core_note(cores) } else { "" }
        );
    }
    megsim_exec::set_threads(0);

    if cores >= 4 {
        entries.push((
            "intra_frame_best_shard_speedup_t4".to_string(),
            best_t4_speedup,
        ));
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json");
    if let Err(e) = merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }

    // CI scaling gate (`MEGSIM_SCALING_GATE=<min speedup>`): on a
    // machine with at least 4 cores, the best 4-thread sharded speedup
    // across render modes must clear the threshold — multi-core overlap
    // is a deliverable, not a best-effort. Below 4 cores the gate
    // cannot measure anything meaningful and skips with a warning
    // (matching the in-job `available_parallelism` assertion in CI).
    if let Ok(gate) = std::env::var("MEGSIM_SCALING_GATE") {
        let gate: f64 = gate
            .parse()
            .unwrap_or_else(|_| panic!("invalid MEGSIM_SCALING_GATE '{gate}' (want e.g. 1.5)"));
        if cores < 4 {
            eprintln!(
                "warning: scaling gate skipped: {cores} core(s) available, the 4-thread \
                 reading needs at least 4"
            );
        } else if best_t4_speedup < gate {
            eprintln!(
                "scaling gate FAILED: best sharded speedup at 4 threads is \
                 {best_t4_speedup:.2}x, gate requires {gate:.2}x"
            );
            std::process::exit(1);
        } else {
            println!(
                "scaling gate passed: best sharded speedup at 4 threads \
                 {best_t4_speedup:.2}x >= {gate:.2}x"
            );
        }
    }
}
