//! # megsim-exec
//!
//! Deterministic parallel execution layer for the MEGsim workspace.
//!
//! Every parallel stage in the reproduction — per-frame functional and
//! cycle-level simulation, similarity-matrix row blocks, multi-seed
//! k-means, random-sampling trials, the per-benchmark experiment
//! fan-out — goes through this crate's ordered-collection primitives:
//!
//! * [`par_map_range`] — map `0..n` to a `Vec` of results **in index
//!   order**, work-stealing across a scoped worker pool.
//! * [`par_map_indexed`] — the same over a slice, passing `(index,
//!   &item)`.
//!
//! ## Determinism
//!
//! Output is *bit-identical regardless of thread count* by
//! construction: the closure for index `i` receives only `i` (plus
//! shared read-only state captured by the caller), and results are
//! collected into their input slots, so scheduling order can never
//! leak into the output. Anything seeded must derive its stream from
//! `i`, never from a shared mutable RNG — the same discipline the
//! workloads crate already uses for per-frame seeds.
//!
//! ## Thread-count control
//!
//! Worker count resolves, in order: [`set_threads`] (e.g. from a
//! `--threads N` flag), the `MEGSIM_THREADS` environment variable,
//! then [`std::thread::available_parallelism`]. A value of `1` runs
//! inline on the caller with zero pool overhead.
//!
//! Nested calls do not oversubscribe: a `par_map_range` issued from
//! inside a pool worker runs sequentially on that worker, so an outer
//! fan-out over benchmarks combined with an inner fan-out over frames
//! still uses exactly the configured number of threads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod pipeline;
pub mod single_flight;

pub use cache::{CacheSnapshot, ConcurrentCache};
pub use pipeline::{iter_fold, iter_pipeline, ordered_pipeline, shard_merge};
pub use single_flight::{FlightOutcome, SingleFlight};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crossbeam::thread::{available_parallelism, scope};
use parking_lot::Mutex;

/// Explicit override set by [`set_threads`]; 0 = unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached environment/hardware default, resolved once.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set while executing inside a pool worker; nested parallel calls
    /// check it and degrade to sequential execution.
    pub(crate) static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker-thread count for all subsequent parallel
/// calls. `0` clears the override, returning to `MEGSIM_THREADS` /
/// available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker-thread count parallel calls will currently use.
pub fn thread_count() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var("MEGSIM_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
            eprintln!("warning: ignoring invalid MEGSIM_THREADS={value:?}");
        }
        available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Whether the current thread is already a pool worker (nested
/// parallel calls run sequentially).
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `0..n` through `f` on the worker pool, returning results in
/// index order.
///
/// `f` must derive everything it needs from the index (plus shared
/// read-only captures); see the crate docs for the determinism
/// contract. Panics in `f` propagate to the caller after all workers
/// have stopped.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = thread_count().min(n);
    if threads <= 1 || in_pool() {
        return (0..n).map(f).collect();
    }
    // Work-stealing index counter: cheap dynamic load balancing that
    // cannot affect the output, because results land in their slots.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
    scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                // One lock per worker, at the end, to merge results.
                let mut slots = slots.lock();
                for (i, value) in local {
                    slots[i] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

/// Maps a slice through `f(index, &item)` on the worker pool,
/// returning results in input order.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Maps `0..n` in fixed-size chunks through `f(range)` on the worker
/// pool, returning one result per chunk in chunk order.
///
/// The chunk boundaries depend only on `n` and `chunk`, never on the
/// thread count, so splitting work this way preserves the determinism
/// contract even when `f` accumulates floating-point state per chunk:
/// the caller can reduce the returned chunk results in their fixed
/// order.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_map_chunks<U, F>(n: usize, chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let chunks = n.div_ceil(chunk);
    par_map_range(chunks, |c| f(c * chunk..((c + 1) * chunk).min(n)))
}

/// Maps `0..n` in fixed-size chunks through `f(range)` on the worker
/// pool and flattens the per-chunk vectors into one `Vec` in index
/// order.
///
/// This is the batch-generation shape: `f` produces one output per
/// index of its chunk (e.g. one synthesized frame per frame index),
/// and because the chunk boundaries depend only on `n` and `chunk`,
/// the concatenated output is bit-identical at every thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_flat_map_chunks<U, F>(n: usize, chunk: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
{
    let chunks = par_map_chunks(n, chunk, f);
    let mut out = Vec::with_capacity(n);
    for part in chunks {
        out.extend(part);
    }
    out
}

/// Consumes a vector of independent work items on the worker pool,
/// work-stealing one item at a time.
///
/// Unlike [`par_map_range`] this variant lets each item *own* mutable
/// state — typically disjoint `&mut` sub-slices produced by
/// `chunks_mut`/`split_at_mut` — so in-place chunked updates (e.g. a
/// label-assignment pass writing into per-chunk slices of one shared
/// buffer) can run on the pool without collecting and copying results.
/// Scheduling order cannot leak into the output as long as items touch
/// only the state they own.
///
/// Runs inline on the caller when the pool is unavailable (one thread,
/// or already inside a pool worker). Panics in `f` propagate.
pub fn par_for_each_task<T, F>(tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = thread_count().min(tasks.len());
    if threads <= 1 || in_pool() {
        for task in tasks {
            f(task);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let task = queue.lock().next();
                    match task {
                        Some(task) => f(task),
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_are_in_index_order() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(8);
        let out = par_map_range(1000, |i| i * i);
        set_threads(0);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let _guard = OVERRIDE_LOCK.lock();
        let work = |i: usize| {
            // Index-derived pseudo-random work, as the determinism
            // contract requires.
            let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..10 {
                x ^= x >> 31;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            }
            x
        };
        let mut outputs = Vec::new();
        for threads in [1, 2, 3, 8] {
            set_threads(threads);
            outputs.push(par_map_range(257, work));
        }
        set_threads(0);
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let calls = AtomicU64::new(0);
        let out = par_map_range(333, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        set_threads(0);
        assert_eq!(calls.load(Ordering::Relaxed), 333);
        assert_eq!(out, (0..333).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_do_not_explode() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let out = par_map_range(6, |i| {
            assert!(in_pool());
            // Inner call runs sequentially on this worker.
            par_map_range(5, move |j| i * 10 + j)
        });
        set_threads(0);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_indexed_passes_items() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(3);
        let items: Vec<String> = (0..50).map(|i| format!("item{i}")).collect();
        let out = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        set_threads(0);
        assert_eq!(out[49], "49:item49");
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let out: Vec<usize> = par_map_range(0, |i| i);
        assert!(out.is_empty());
        assert_eq!(par_map_range(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_chunks_covers_every_index_once() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let chunks = par_map_chunks(103, 10, |r| r.collect::<Vec<usize>>());
        set_threads(0);
        assert_eq!(chunks.len(), 11);
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunks_is_thread_count_independent() {
        let _guard = OVERRIDE_LOCK.lock();
        let mut outputs = Vec::new();
        for threads in [1, 2, 8] {
            set_threads(threads);
            // Per-chunk float accumulation: chunk boundaries (not the
            // scheduler) define the reduction tree.
            let sums = par_map_chunks(1000, 64, |r| r.map(|i| (i as f64).sqrt()).sum::<f64>());
            outputs.push(sums);
        }
        set_threads(0);
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn par_flat_map_chunks_flattens_in_index_order() {
        let _guard = OVERRIDE_LOCK.lock();
        let mut outputs = Vec::new();
        for threads in [1usize, 4, 8] {
            set_threads(threads);
            outputs.push(par_flat_map_chunks(103, 10, |r| {
                r.map(|i| i * 7).collect::<Vec<usize>>()
            }));
        }
        set_threads(0);
        assert_eq!(outputs[0], (0..103).map(|i| i * 7).collect::<Vec<_>>());
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn par_for_each_task_runs_every_item_with_owned_state() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let mut buffer = vec![0usize; 257];
        {
            let tasks: Vec<(usize, &mut [usize])> = buffer
                .chunks_mut(16)
                .enumerate()
                .map(|(c, chunk)| (c * 16, chunk))
                .collect();
            par_for_each_task(tasks, |(start, chunk)| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = (start + off) * 3;
                }
            });
        }
        set_threads(0);
        for (i, v) in buffer.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn par_for_each_task_handles_empty_input() {
        let tasks: Vec<usize> = Vec::new();
        par_for_each_task(tasks, |_| panic!("must not run"));
    }

    #[test]
    fn env_override_is_ignored_when_explicit_set() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(2);
        assert_eq!(thread_count(), 2);
        set_threads(0);
        assert!(thread_count() >= 1);
    }
}
