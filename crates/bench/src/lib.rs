//! # megsim-bench
//!
//! The experiment harness of the MEGsim reproduction: one binary per
//! table/figure of the paper's evaluation, a shared experiments library,
//! and Criterion benches for the computational kernels.
//!
//! Binaries (all accept `--scale`, `--seed`, `--benchmarks`, …; see
//! [`args::ExperimentArgs`]):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table I (machine description) |
//! | `table2` | Table II (benchmark characterization) |
//! | `fig3` | Fig. 3 (input-parameter correlation) |
//! | `fig4` | Fig. 4 (power split per pipeline phase) |
//! | `fig5` | Fig. 5 (similarity matrix) |
//! | `fig6` | Fig. 6 (clusters of bbr) |
//! | `table3` | Table III (frame-reduction factor) |
//! | `fig7` | Fig. 7 (relative errors) |
//! | `table4` | Table IV (vs random sub-sampling) |
//! | `all_experiments` | everything above in one run |
//! | `ablation_*` | design-choice ablations (DESIGN.md §5) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod experiments;
pub mod format;
pub mod report;

pub use args::ExperimentArgs;
pub use experiments::{compute_benchmark, compute_suite, BenchmarkData, Context};
