//! Similarity-matrix construction benchmark (Fig. 5 cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megsim_core::SimilarityMatrix;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_matrix");
    group.sample_size(20);
    for n in [200usize, 500, 900] {
        let frames: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..64).map(|j| ((i * 7 + j * 3) % 101) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &frames, |b, frames| {
            b.iter(|| SimilarityMatrix::from_vectors(frames));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
