//! Binary trace-file codec.
//!
//! TEAPOT stores intercepted GL commands in trace files; the paper's
//! conclusions explicitly count "the cost in time and storage (for the
//! trace files)" among what MEGsim reduces. This module provides a
//! compact little-endian binary format for [`CommandStream`]s:
//!
//! ```text
//! magic "MGLT" | version u16 | command count u64 | commands...
//! command = opcode u8 | payload (opcode-specific)
//! ```

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use megsim_gfx::draw::BlendMode;
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec2, Vec3, Vec4};
use megsim_gfx::shader::{ShaderId, ShaderKind, ShaderProgram, TextureFilter};
use megsim_gfx::texture::{TextureDesc, TextureId};

use crate::command::{BufferId, Command, CommandStream};

/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"MGLT";

/// Error produced while decoding a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes are wrong — not a trace file.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u16),
    /// The buffer ended in the middle of a command.
    Truncated,
    /// An opcode or enum discriminant is unknown.
    BadValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a MGLT trace file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "trace file is truncated"),
            DecodeError::BadValue(what) => write!(f, "invalid {what} in trace file"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a stream into bytes.
pub fn encode(stream: &CommandStream) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + stream.commands.len() * 16);
    out.put_slice(MAGIC);
    out.put_u16_le(FORMAT_VERSION);
    out.put_u64_le(stream.commands.len() as u64);
    for cmd in &stream.commands {
        out.put_u8(cmd.opcode());
        match cmd {
            Command::BufferData { id, mesh } => {
                out.put_u32_le(id.0);
                out.put_u64_le(mesh.base_address);
                out.put_u32_le(mesh.vertices.len() as u32);
                for v in &mesh.vertices {
                    for f in [
                        v.position.x,
                        v.position.y,
                        v.position.z,
                        v.normal.x,
                        v.normal.y,
                        v.normal.z,
                        v.uv.x,
                        v.uv.y,
                    ] {
                        out.put_f32_le(f);
                    }
                }
                out.put_u32_le(mesh.indices.len() as u32);
                for &i in &mesh.indices {
                    out.put_u32_le(i);
                }
            }
            Command::TexImage(t) => {
                out.put_u32_le(t.id.0);
                out.put_u32_le(t.width);
                out.put_u32_le(t.height);
                out.put_u32_le(t.bytes_per_texel);
                out.put_u64_le(t.base_address);
            }
            Command::ProgramData(p) => {
                out.put_u32_le(p.id.0);
                out.put_u8(match p.kind {
                    ShaderKind::Vertex => 0,
                    ShaderKind::Fragment => 1,
                });
                let name = p.name.as_bytes();
                out.put_u16_le(name.len() as u16);
                out.put_slice(name);
                out.put_u32_le(p.alu_instructions);
                out.put_u16_le(p.texture_samples.len() as u16);
                for f in &p.texture_samples {
                    out.put_u8(match f {
                        TextureFilter::Nearest => 0,
                        TextureFilter::Linear => 1,
                        TextureFilter::Bilinear => 2,
                        TextureFilter::Trilinear => 3,
                    });
                }
            }
            Command::UseProgram { vertex, fragment } => {
                out.put_u32_le(vertex.0);
                out.put_u32_le(fragment.0);
            }
            Command::BindTexture(t) => match t {
                Some(id) => {
                    out.put_u8(1);
                    out.put_u32_le(id.0);
                }
                None => out.put_u8(0),
            },
            Command::UniformMatrix(m) => {
                for col in &m.cols {
                    for f in [col.x, col.y, col.z, col.w] {
                        out.put_f32_le(f);
                    }
                }
            }
            Command::Blend(b) => out.put_u8(match b {
                BlendMode::Opaque => 0,
                BlendMode::AlphaBlend => 1,
                BlendMode::Additive => 2,
            }),
            Command::DepthTest(d) => out.put_u8(u8::from(*d)),
            Command::Draw(id) => out.put_u32_le(id.0),
            Command::SwapBuffers => {}
        }
    }
    out.freeze()
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(DecodeError::Truncated);
        }
    };
}

/// Deserializes a stream from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input; never panics on
/// arbitrary bytes.
pub fn decode(mut data: &[u8]) -> Result<CommandStream, DecodeError> {
    need!(data, 4);
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    need!(data, 2 + 8);
    let version = data.get_u16_le();
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = data.get_u64_le() as usize;
    // Guard against absurd counts from corrupt headers: each command is
    // at least 1 byte.
    if count > data.remaining() {
        return Err(DecodeError::Truncated);
    }
    let mut commands = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        need!(data, 1);
        let opcode = data.get_u8();
        let cmd = match opcode {
            0 => {
                need!(data, 4 + 8 + 4);
                let id = BufferId(data.get_u32_le());
                let base_address = data.get_u64_le();
                let n_verts = data.get_u32_le() as usize;
                need!(data, n_verts * 32 + 4);
                let mut vertices = Vec::with_capacity(n_verts);
                for _ in 0..n_verts {
                    let mut f = [0.0f32; 8];
                    for slot in &mut f {
                        *slot = data.get_f32_le();
                    }
                    vertices.push(Vertex {
                        position: Vec3::new(f[0], f[1], f[2]),
                        normal: Vec3::new(f[3], f[4], f[5]),
                        uv: Vec2::new(f[6], f[7]),
                    });
                }
                let n_idx = data.get_u32_le() as usize;
                need!(data, n_idx * 4);
                let mut indices = Vec::with_capacity(n_idx);
                for _ in 0..n_idx {
                    indices.push(data.get_u32_le());
                }
                // `% 3 != 0` rather than `is_multiple_of` (MSRV 1.75).
                #[allow(clippy::manual_is_multiple_of)]
                if n_idx % 3 != 0 || indices.iter().any(|&i| i as usize >= n_verts) {
                    return Err(DecodeError::BadValue("mesh indices"));
                }
                Command::BufferData {
                    id,
                    mesh: Mesh::new(vertices, indices, base_address),
                }
            }
            1 => {
                need!(data, 4 * 4 + 8);
                let id = data.get_u32_le();
                let width = data.get_u32_le();
                let height = data.get_u32_le();
                let bpt = data.get_u32_le();
                let base = data.get_u64_le();
                if !width.is_power_of_two() || !height.is_power_of_two() || bpt == 0 {
                    return Err(DecodeError::BadValue("texture geometry"));
                }
                Command::TexImage(TextureDesc::new(id, width, height, bpt, base))
            }
            2 => {
                need!(data, 4 + 1 + 2);
                let id = data.get_u32_le();
                let kind = match data.get_u8() {
                    0 => ShaderKind::Vertex,
                    1 => ShaderKind::Fragment,
                    _ => return Err(DecodeError::BadValue("shader kind")),
                };
                let name_len = data.get_u16_le() as usize;
                need!(data, name_len);
                let mut name = vec![0u8; name_len];
                data.copy_to_slice(&mut name);
                let name =
                    String::from_utf8(name).map_err(|_| DecodeError::BadValue("shader name"))?;
                need!(data, 4 + 2);
                let alu = data.get_u32_le();
                let n_samples = data.get_u16_le() as usize;
                need!(data, n_samples);
                let mut samples = Vec::with_capacity(n_samples);
                for _ in 0..n_samples {
                    samples.push(match data.get_u8() {
                        0 => TextureFilter::Nearest,
                        1 => TextureFilter::Linear,
                        2 => TextureFilter::Bilinear,
                        3 => TextureFilter::Trilinear,
                        _ => return Err(DecodeError::BadValue("texture filter")),
                    });
                }
                Command::ProgramData(ShaderProgram {
                    id: ShaderId(id),
                    kind,
                    name,
                    alu_instructions: alu,
                    texture_samples: samples,
                })
            }
            3 => {
                need!(data, 8);
                Command::UseProgram {
                    vertex: ShaderId(data.get_u32_le()),
                    fragment: ShaderId(data.get_u32_le()),
                }
            }
            4 => {
                need!(data, 1);
                match data.get_u8() {
                    0 => Command::BindTexture(None),
                    1 => {
                        need!(data, 4);
                        Command::BindTexture(Some(TextureId(data.get_u32_le())))
                    }
                    _ => return Err(DecodeError::BadValue("texture binding")),
                }
            }
            5 => {
                need!(data, 64);
                let mut cols = [Vec4::default(); 4];
                for col in &mut cols {
                    *col = Vec4::new(
                        data.get_f32_le(),
                        data.get_f32_le(),
                        data.get_f32_le(),
                        data.get_f32_le(),
                    );
                }
                Command::UniformMatrix(Mat4 { cols })
            }
            6 => {
                need!(data, 1);
                Command::Blend(match data.get_u8() {
                    0 => BlendMode::Opaque,
                    1 => BlendMode::AlphaBlend,
                    2 => BlendMode::Additive,
                    _ => return Err(DecodeError::BadValue("blend mode")),
                })
            }
            7 => {
                need!(data, 1);
                Command::DepthTest(match data.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::BadValue("depth flag")),
                })
            }
            8 => {
                need!(data, 4);
                Command::Draw(BufferId(data.get_u32_le()))
            }
            9 => Command::SwapBuffers,
            _ => return Err(DecodeError::BadValue("opcode")),
        };
        commands.push(cmd);
    }
    Ok(CommandStream { commands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record_sequence;
    use megsim_gfx::draw::{DrawCall, Frame};
    use std::sync::Arc;

    fn sample_stream() -> CommandStream {
        let mut shaders = megsim_gfx::shader::ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "vs", 9));
        shaders.add(ShaderProgram::fragment(
            0,
            "fs",
            4,
            vec![TextureFilter::Trilinear],
        ));
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.3, -0.3, 0.0)),
                Vertex::at(Vec3::new(0.3, -0.3, 0.0)),
                Vertex::at(Vec3::new(0.0, 0.3, 0.0)),
            ],
            vec![0, 1, 2],
            0x77,
        ));
        let mut frame = Frame::new();
        frame.draws.push(DrawCall {
            mesh,
            transform: Mat4::rotation_y(0.3),
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: Some(TextureDesc::new(2, 128, 64, 4, 0xFEED)),
            blend: BlendMode::Additive,
            depth_test: true,
        });
        record_sequence(&shaders, &[frame])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let stream = sample_stream();
        let bytes = encode(&stream);
        let back = decode(&bytes).expect("roundtrip");
        assert_eq!(stream, back);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode(b"NOPE\x01\x00"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&sample_stream()).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample_stream());
        // Every strict prefix must fail cleanly, never panic.
        for len in 0..bytes.len() {
            let r = decode(&bytes[..len]);
            assert!(r.is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn rejects_corrupt_opcode() {
        let mut bytes = encode(&sample_stream()).to_vec();
        // First opcode byte follows the 14-byte header.
        bytes[14] = 0xEE;
        assert_eq!(decode(&bytes), Err(DecodeError::BadValue("opcode")));
    }

    #[test]
    fn trace_is_compact_relative_to_frame_dump() {
        // 50 frames sharing one mesh: the trace stores the mesh once.
        let mut shaders = megsim_gfx::shader::ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v", 3));
        shaders.add(ShaderProgram::fragment(0, "f", 3, vec![]));
        let mesh = Arc::new(Mesh::new(
            vec![Vertex::at(Vec3::ZERO); 300],
            (0..300u32).collect(),
            0,
        ));
        let frames: Vec<Frame> = (0..50)
            .map(|i| {
                let mut f = Frame::new();
                f.draws.push(DrawCall {
                    mesh: Arc::clone(&mesh),
                    transform: Mat4::rotation_y(i as f32 * 0.1),
                    vertex_shader: ShaderId(0),
                    fragment_shader: ShaderId(0),
                    texture: None,
                    blend: BlendMode::Opaque,
                    depth_test: true,
                });
                f
            })
            .collect();
        let stream = record_sequence(&shaders, &frames);
        let encoded = encode(&stream);
        let mesh_bytes = 300 * 32 + 300 * 4;
        // One mesh upload (~10.9 KB) + 50 × (matrix + draw + swap).
        assert!(encoded.len() < mesh_bytes + 50 * 80 + 256);
    }
}
