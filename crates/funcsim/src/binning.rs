//! The Tiling Engine's Polygon List Builder: identifies the screen tiles
//! overlapped by each primitive and builds per-tile primitive lists
//! (center of Fig. 1).
//!
//! The per-tile lists are stored in CSR form (one offsets array plus one
//! flat entries array) instead of a `Vec<Vec<u32>>`, so rebuilding the
//! bins every frame touches no allocator once the scratch buffers have
//! grown to steady state.

use megsim_gfx::draw::Viewport;
use megsim_gfx::geometry::Primitive;

use crate::activity::FrameActivity;
use crate::geometry::TransformedDraw;

/// A primitive bound to its originating draw call.
#[derive(Debug, Clone, Copy)]
pub struct BinnedPrim {
    /// Index of the draw call within the frame.
    pub draw_index: u32,
    /// The screen-space primitive.
    pub prim: Primitive,
}

/// Per-tile primitive lists, in submission order within each tile,
/// stored as a CSR matrix over tiles.
#[derive(Debug, Clone, Default)]
pub struct TileBins {
    /// Flat store of all emitted primitives.
    prims: Vec<BinnedPrim>,
    /// CSR row starts: tile `t`'s entries live at
    /// `entries[offsets[t]..offsets[t + 1]]`. Empty when no tiles.
    offsets: Vec<u32>,
    /// Indices into `prims`, grouped by tile.
    entries: Vec<u32>,
}

impl TileBins {
    /// Bins with no tiles and no primitives — the placeholder for
    /// immediate-mode rendering, which bypasses the Tiling Engine.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The binned primitive with the given index.
    #[inline]
    pub fn prim(&self, index: u32) -> &BinnedPrim {
        &self.prims[index as usize]
    }

    /// Number of binned primitives.
    pub fn prim_count(&self) -> usize {
        self.prims.len()
    }

    /// Whether no primitive was binned.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// Primitive indices binned to the given tile (row-major).
    pub fn tile_entries(&self, tile: u32) -> &[u32] {
        let t = tile as usize;
        if t + 1 >= self.offsets.len() {
            return &[];
        }
        &self.entries[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// Tiles that contain at least one primitive, in row-major order.
    pub fn touched_tiles(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[1] > w[0])
            .map(|(t, w)| (t as u32, &self.entries[w[0] as usize..w[1] as usize]))
    }
}

/// Reusable Tiling Engine scratch: the per-tile entry counters and the
/// per-primitive tile spans recorded by the counting pass.
#[derive(Debug, Default)]
pub struct BinScratch {
    /// Per-tile entry count, then (after the prefix sum) the per-tile
    /// write cursor of the fill pass.
    counts: Vec<u32>,
    /// `(tx0, ty0, tx1, ty1)` per kept primitive, parallel to
    /// `TileBins::prims`.
    spans: Vec<(u32, u32, u32, u32)>,
}

/// Bins every emitted primitive to the tiles its bounding box overlaps
/// (the conservative binning that bbox-based Polygon List Builders use).
///
/// Two passes over the primitives: the first counts entries per tile
/// (recording each primitive's tile span), the second fills the CSR
/// entries in primitive order — preserving submission order within every
/// tile, exactly as the old push-based builder did.
pub fn bin_primitives(
    draws: &[TransformedDraw],
    viewport: Viewport,
    activity: &mut FrameActivity,
    scratch: &mut BinScratch,
) -> TileBins {
    let tile_count = viewport.tile_count() as usize;
    let mut bins = TileBins::default();
    scratch.counts.clear();
    scratch.counts.resize(tile_count, 0);
    scratch.spans.clear();
    // Pass 1: keep overlapping primitives and count per-tile entries.
    for draw in draws {
        for prim in &draw.prims {
            let (min_x, min_y, max_x, max_y) = prim.bounds();
            let Some((tx0, ty0, tx1, ty1)) = viewport.tiles_overlapping(min_x, min_y, max_x, max_y)
            else {
                continue;
            };
            bins.prims.push(BinnedPrim {
                draw_index: draw.geometry.draw_index,
                prim: *prim,
            });
            scratch.spans.push((tx0, ty0, tx1, ty1));
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    scratch.counts[viewport.tile_index(tx, ty) as usize] += 1;
                    activity.tile_bin_entries += 1;
                }
            }
        }
    }
    // Prefix-sum the counts into CSR offsets, turning `counts` into the
    // fill pass's write cursors.
    bins.offsets.clear();
    bins.offsets.reserve(tile_count + 1);
    let mut total = 0u32;
    bins.offsets.push(0);
    for c in scratch.counts.iter_mut() {
        let n = *c;
        *c = total;
        total += n;
        bins.offsets.push(total);
    }
    // Pass 2: fill entries in primitive (= submission) order.
    bins.entries.clear();
    bins.entries.resize(total as usize, 0);
    for (prim_idx, &(tx0, ty0, tx1, ty1)) in scratch.spans.iter().enumerate() {
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let cursor = &mut scratch.counts[viewport.tile_index(tx, ty) as usize];
                bins.entries[*cursor as usize] = prim_idx as u32;
                *cursor += 1;
            }
        }
    }
    activity.tiles_touched += bins.offsets.windows(2).filter(|w| w[1] > w[0]).count() as u64;
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DrawGeometry;
    use megsim_gfx::geometry::ScreenVertex;
    use megsim_gfx::math::Vec2;
    use megsim_gfx::shader::ShaderId;

    fn sv(x: f32, y: f32) -> ScreenVertex {
        ScreenVertex {
            x,
            y,
            z: 0.5,
            inv_w: 1.0,
            uv: Vec2::default(),
        }
    }

    fn transformed(prims: Vec<Primitive>) -> TransformedDraw {
        TransformedDraw {
            geometry: DrawGeometry {
                draw_index: 0,
                vertex_shader: ShaderId(0),
                vertex_shader_instructions: 1,
                vertex_fetch_addresses: vec![],
                vertices_shaded: 0,
                primitives_assembled: prims.len() as u32,
                primitives_emitted: prims.len() as u32,
            },
            prims,
        }
    }

    fn bin(draws: &[TransformedDraw], viewport: Viewport, act: &mut FrameActivity) -> TileBins {
        bin_primitives(draws, viewport, act, &mut BinScratch::default())
    }

    #[test]
    fn small_triangle_bins_to_one_tile() {
        let viewport = Viewport::new(128, 128, 32);
        let prim = Primitive {
            v: [sv(2.0, 2.0), sv(10.0, 2.0), sv(2.0, 10.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 1);
        assert_eq!(act.tiles_touched, 1);
        assert_eq!(bins.tile_entries(0), &[0]);
    }

    #[test]
    fn spanning_triangle_bins_to_multiple_tiles() {
        let viewport = Viewport::new(128, 128, 32);
        // Bbox covers tiles (0,0)..(1,1) = 4 tiles.
        let prim = Primitive {
            v: [sv(10.0, 10.0), sv(50.0, 10.0), sv(10.0, 50.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 4);
        assert_eq!(bins.touched_tiles().count(), 4);
    }

    #[test]
    fn submission_order_is_preserved_within_a_tile() {
        let viewport = Viewport::new(64, 64, 32);
        let a = Primitive {
            v: [sv(1.0, 1.0), sv(5.0, 1.0), sv(1.0, 5.0)],
        };
        let b = Primitive {
            v: [sv(2.0, 2.0), sv(6.0, 2.0), sv(2.0, 6.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin(&[transformed(vec![a, b])], viewport, &mut act);
        assert_eq!(bins.tile_entries(0), &[0, 1]);
    }

    #[test]
    fn offscreen_primitive_is_ignored() {
        let viewport = Viewport::new(64, 64, 32);
        let prim = Primitive {
            v: [sv(-50.0, -50.0), sv(-40.0, -50.0), sv(-50.0, -40.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 0);
        assert!(bins.is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let viewport = Viewport::new(128, 128, 32);
        let prims = vec![
            Primitive {
                v: [sv(10.0, 10.0), sv(50.0, 10.0), sv(10.0, 50.0)],
            },
            Primitive {
                v: [sv(70.0, 70.0), sv(90.0, 70.0), sv(70.0, 90.0)],
            },
        ];
        let mut scratch = BinScratch::default();
        let mut a1 = FrameActivity::new(1, 1);
        // Dirty the scratch with an unrelated frame first.
        let _ = bin_primitives(
            &[transformed(vec![Primitive {
                v: [sv(1.0, 1.0), sv(120.0, 1.0), sv(1.0, 120.0)],
            }])],
            viewport,
            &mut a1,
            &mut scratch,
        );
        let mut act_reused = FrameActivity::new(1, 1);
        let reused = bin_primitives(
            &[transformed(prims.clone())],
            viewport,
            &mut act_reused,
            &mut scratch,
        );
        let mut act_fresh = FrameActivity::new(1, 1);
        let fresh = bin(&[transformed(prims)], viewport, &mut act_fresh);
        assert_eq!(act_reused, act_fresh);
        assert_eq!(reused.prim_count(), fresh.prim_count());
        let r: Vec<_> = reused.touched_tiles().collect();
        let f: Vec<_> = fresh.touched_tiles().collect();
        assert_eq!(r, f);
    }

    #[test]
    fn empty_bins_report_nothing() {
        let bins = TileBins::empty();
        assert!(bins.is_empty());
        assert_eq!(bins.prim_count(), 0);
        assert_eq!(bins.touched_tiles().count(), 0);
        assert_eq!(bins.tile_entries(3), &[] as &[u32]);
    }
}
