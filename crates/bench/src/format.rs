//! Plain-text table rendering for the experiment binaries.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a ratio as a `N×` factor with one decimal.
pub fn times(factor: f64) -> String {
    format!("{factor:.1}x")
}

/// Formats a large count in millions with one decimal.
pub fn millions(v: f64) -> String {
    format!("{:.1}", v / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.0084), "0.84%");
        assert_eq!(times(126.04), "126.0x");
        assert_eq!(millions(39_839_000_000.0 / 1000.0), "39.8");
    }
}
