//! The seed workload generator, retained verbatim.
//!
//! [`ReferenceWorkload`] wraps a [`Workload`] and regenerates its frames
//! with the *original* per-instance code path: a fresh `SmallRng`
//! seeding plus three uniform draws per instance, per frame, and every
//! matrix (including the constant `rotation_x(tilt)` / `scale(size)` /
//! `perspective` factors) rebuilt from scratch. The optimized
//! [`Workload::frame`] must stay bit-identical to this for every frame
//! of every benchmark — the proptest oracles in
//! `tests/reference_oracle.rs` and the `workloads` bench enforce that.
//!
//! This module is compiled only under `cfg(test)` or the `reference`
//! feature; it never ships in the production build.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use megsim_gfx::draw::{DrawCall, Frame};
use megsim_gfx::math::{Mat4, Vec3};

use crate::game::{GameType, ObjectClass, Workload};

/// Seed-code frame generator view over a [`Workload`].
#[derive(Debug, Clone, Copy)]
pub struct ReferenceWorkload<'a>(pub &'a Workload);

impl ReferenceWorkload<'_> {
    /// Generates frame `i` with the seed generator's exact code.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.0.frames()`.
    pub fn frame(&self, i: usize) -> Frame {
        let w = self.0;
        let segment = *w.segment_at(i);
        let template = &w.templates[segment.template];
        let mut rng =
            SmallRng::seed_from_u64(w.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let t = i as f32 * 0.03;
        let spike_class = if rng.gen_bool(w.spike_probability) {
            Some(rng.gen_range(0..template.classes.len().max(1)))
        } else {
            None
        };
        let offset = i - segment.start;
        let window = (segment.len / 12).clamp(1, 3);
        let transition = if offset < window {
            1.0 + (w.transition_boost - 1.0) * 0.5f64.powi(offset as i32)
        } else {
            1.0
        };
        let mut frame = Frame::new();
        for (ci, class) in template.classes.iter().enumerate() {
            let wobble = (t as f64 * class.wobble_freq + ci as f64 * 1.7).sin();
            let mut count = (class.base_count * segment.intensity + class.count_amplitude * wobble)
                * transition;
            count *= 1.0 + w.noise * rng.gen_range(-1.0..1.0);
            if spike_class == Some(ci) {
                count *= 2.0;
            }
            let count = count.round().max(0.0) as usize;
            for j in 0..count {
                frame
                    .draws
                    .push(self.instance(class, ci, j, i, t, &mut rng));
            }
        }
        frame
    }

    /// Iterates over all frames with the seed generator.
    pub fn iter_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.0.frames()).map(move |i| self.frame(i))
    }

    fn instance(
        &self,
        class: &ObjectClass,
        class_index: usize,
        j: usize,
        frame_index: usize,
        t: f32,
        rng: &mut SmallRng,
    ) -> DrawCall {
        let w = self.0;
        // Stable per-(class, instance) placement that drifts with time:
        // instances keep their identity across frames of a segment.
        let mut prng = SmallRng::seed_from_u64(
            w.seed ^ ((class_index as u64) << 32) ^ (j as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let px = prng.gen_range(-0.85..0.85f32);
        let py = prng.gen_range(-0.75..0.75f32);
        let phase = prng.gen_range(0.0..std::f32::consts::TAU);
        let drift_x = (t * 0.8 + phase).sin() * 0.12;
        let drift_y = (t * 0.5 + phase).cos() * 0.08;
        let _ = frame_index;
        let transform = match w.game_type {
            GameType::TwoD => {
                // Orthographic: place directly in NDC; layer by class.
                let layer = class_index as f32 * 0.01 + j as f32 * 1e-4;
                Mat4::translation(Vec3::new(px + drift_x, py + drift_y, -layer))
                    * Mat4::rotation_z((t + phase) * 0.3)
                    * Mat4::rotation_x(class.tilt)
                    * Mat4::scale(Vec3::splat(class.size))
            }
            GameType::ThreeD => {
                let dist = class.distance * (1.0 + 0.3 * (t * 0.4 + phase).sin());
                let proj = Mat4::perspective(1.05, 2.0, 0.5, 120.0);
                proj * Mat4::translation(Vec3::new(
                    (px + drift_x) * dist * 0.9,
                    (py + drift_y) * dist * 0.55,
                    -dist,
                )) * Mat4::rotation_y(t * 0.7 + phase)
                    * Mat4::rotation_x(class.tilt)
                    * Mat4::scale(Vec3::splat(class.size))
            }
        };
        let _ = rng;
        DrawCall {
            mesh: Arc::clone(&w.meshes[class.mesh]),
            transform,
            vertex_shader: class.vertex_shader,
            fragment_shader: class.fragment_shader,
            texture: class.texture.map(|i| w.textures[i]),
            blend: class.blend,
            depth_test: class.depth_test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitwise view of a matrix: stricter than `PartialEq` (which is
    /// f32 value equality and would conflate `-0.0` with `0.0`).
    fn mat_bits(m: &Mat4) -> [[u32; 4]; 4] {
        let c = |v: &megsim_gfx::math::Vec4| {
            [v.x.to_bits(), v.y.to_bits(), v.z.to_bits(), v.w.to_bits()]
        };
        [c(&m.cols[0]), c(&m.cols[1]), c(&m.cols[2]), c(&m.cols[3])]
    }

    /// The optimized generator must match the seed generator bit for
    /// bit on real suite workloads at a tiny scale (the integration
    /// oracle covers all 8 aliases under `--features reference`).
    #[test]
    fn optimized_matches_reference_on_tiny_workload() {
        // One 2-D and one 3-D game: spikes, noise and transitions all
        // exercised at frame_scale 0.01.
        for alias in ["bbr1", "asp"] {
            let w = crate::by_alias(alias, 0.01, 42).expect("known alias");
            let refw = ReferenceWorkload(&w);
            for i in 0..w.frames() {
                let fast = w.frame(i);
                let seed = refw.frame(i);
                assert_eq!(fast.draws.len(), seed.draws.len(), "{alias} frame {i}");
                for (a, b) in fast.draws.iter().zip(&seed.draws) {
                    assert_eq!(
                        mat_bits(&a.transform),
                        mat_bits(&b.transform),
                        "{alias} frame {i}"
                    );
                    assert_eq!(a.vertex_shader, b.vertex_shader);
                    assert_eq!(a.fragment_shader, b.fragment_shader);
                    assert_eq!(a.texture, b.texture);
                    assert_eq!(a.blend, b.blend);
                    assert_eq!(a.depth_test, b.depth_test);
                    assert!(Arc::ptr_eq(&a.mesh, &b.mesh), "{alias} frame {i}");
                }
            }
        }
    }

    /// Parallel batch generation is bit-identical to sequential
    /// iteration at several thread counts.
    #[test]
    fn generate_frames_matches_iter_frames_across_threads() {
        let w = crate::by_alias("hcr", 0.01, 7).expect("known alias");
        let serial: Vec<_> = w.iter_frames().collect();
        for threads in [1, 2, 8] {
            megsim_exec::set_threads(threads);
            let batch = w.generate_frames();
            assert_eq!(batch.len(), serial.len());
            for (i, (a, b)) in batch.iter().zip(&serial).enumerate() {
                assert_eq!(a.draws.len(), b.draws.len(), "frame {i} @ {threads}t");
                for (x, y) in a.draws.iter().zip(&b.draws) {
                    assert_eq!(mat_bits(&x.transform), mat_bits(&y.transform));
                }
            }
        }
        megsim_exec::set_threads(1);
    }
}
