//! Determinism tests for the pipelined warm-sequence simulator: the
//! bounded ordered pipeline must produce statistics bit-identical to
//! the plain sequential loop at every thread count, because the timing
//! model consumes traces strictly in frame order on one thread.

use megsim_core::{simulate_sequence_warm, simulate_sequence_warm_sequential};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

#[test]
fn pipelined_warm_sequence_is_bit_identical_across_thread_counts() {
    let workload = by_alias("jjo", 0.01, 5).expect("known alias");
    let cfg = GpuConfig::small(192, 192);
    let baseline =
        simulate_sequence_warm_sequential(workload.iter_frames(), workload.shaders(), &cfg);
    assert!(baseline.len() > 4, "workload produced a trivial sequence");
    for threads in [1, 2, 8] {
        megsim_exec::set_threads(threads);
        let piped = simulate_sequence_warm(workload.iter_frames(), workload.shaders(), &cfg);
        megsim_exec::set_threads(0);
        assert_eq!(piped, baseline, "threads = {threads}");
    }
}

#[test]
fn warm_sequence_counts_idle_l2_drain_on_last_frame() {
    let workload = by_alias("pvz", 0.01, 4).expect("known alias");
    let cfg = GpuConfig::small(192, 192);
    let stats = simulate_sequence_warm_sequential(workload.iter_frames(), workload.shaders(), &cfg);
    let last = stats.last().expect("non-empty sequence");
    // The device went idle with dirty frame-buffer lines still in the
    // L2; their writebacks are attributed to the final frame, so the
    // sequence's total writeback count matches what a full drain of the
    // hierarchy would observe.
    assert!(
        last.memory.l2.writebacks > 0,
        "end-of-sequence drain produced no writebacks"
    );
}
