//! Prints Fig. 6 (k-means clusters of bbr1 along the matrix diagonal).
use megsim_bench::{compute_benchmark, Context, ExperimentArgs};
use megsim_workloads::BENCHMARKS;

fn main() {
    let mut args = ExperimentArgs::from_env();
    if args.benchmarks.is_empty() {
        args.benchmarks = vec!["bbr1".to_string()];
    }
    let alias = args.benchmarks[0].clone();
    let ctx = Context::new(args);
    let info = BENCHMARKS
        .iter()
        .find(|b| b.alias == alias)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark: {alias}");
            std::process::exit(2);
        });
    let d = compute_benchmark(&ctx, info);
    print!("{}", megsim_bench::experiments::fig6(&d, &ctx.megsim));
}
