//! Per-frame activity counters — the output of the "fast functional
//! simulation" step of paper §III-B.
//!
//! These counters are everything MEGsim needs to characterize a frame:
//! per-shader invocation counts (the raw VSCV/FSCV), the number of
//! primitives that reach the Tiling Engine (PRIM), and the remaining
//! pipeline activity used by the timing and power models.

use serde::{Deserialize, Serialize};

use megsim_gfx::shader::TextureFilter;

/// Activity counters of one rendered frame (or a merged sequence).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameActivity {
    /// Vertex-shader invocations per vertex shader ID (raw VSCV).
    pub vertex_shader_invocations: Vec<u64>,
    /// Fragment-shader invocations per fragment shader ID (raw FSCV).
    pub fragment_shader_invocations: Vec<u64>,
    /// Vertices fetched by the Vertex Fetcher (one per index).
    pub vertices_fetched: u64,
    /// Unique vertices shaded by the Vertex Processors.
    pub vertices_shaded: u64,
    /// Triangles assembled by Primitive Assembly.
    pub primitives_assembled: u64,
    /// Triangles rejected by frustum clipping.
    pub primitives_clipped: u64,
    /// Triangles rejected by back-face culling.
    pub primitives_culled_backface: u64,
    /// Degenerate (zero-area) triangles dropped.
    pub primitives_culled_degenerate: u64,
    /// Triangles passed to the Tiling Engine — the paper's **PRIM**.
    pub primitives_emitted: u64,
    /// Primitive-tile pairs written by the Polygon List Builder.
    pub tile_bin_entries: u64,
    /// Screen tiles with at least one primitive.
    pub tiles_touched: u64,
    /// 2×2 quads processed by the Rasterizer.
    pub quads_rasterized: u64,
    /// Fragments produced by the Rasterizer (covered pixels).
    pub fragments_rasterized: u64,
    /// Fragments discarded by the Early-Z test.
    pub fragments_early_z_culled: u64,
    /// Fragments discarded by Hidden Surface Removal (TBDR mode only).
    pub fragments_hsr_culled: u64,
    /// Fragments shaded by the Fragment Processors.
    pub fragments_shaded: u64,
    /// Texture samples executed, indexed by
    /// [`TextureFilter::ALL`] order.
    pub texture_samples: [u64; 4],
    /// Blending-unit operations (one per shaded fragment).
    pub blend_ops: u64,
    /// ALU instructions executed by vertex shaders.
    pub vertex_instructions: u64,
    /// ALU + texture instructions executed by fragment shaders.
    pub fragment_instructions: u64,
}

impl FrameActivity {
    /// Creates zeroed counters sized for `p` vertex and `q` fragment
    /// shaders.
    pub fn new(vertex_shaders: usize, fragment_shaders: usize) -> Self {
        Self {
            vertex_shader_invocations: vec![0; vertex_shaders],
            fragment_shader_invocations: vec![0; fragment_shaders],
            ..Self::default()
        }
    }

    /// Total texture-memory accesses implied by the samples (each sample
    /// weighted by its filter's access count, paper §III-B).
    pub fn texture_memory_accesses(&self) -> u64 {
        TextureFilter::ALL
            .iter()
            .zip(self.texture_samples)
            .map(|(f, n)| n * u64::from(f.memory_accesses()))
            .sum()
    }

    /// Total shader instructions (vertex + fragment), the numerator of
    /// the IPC metric in Table II.
    pub fn total_instructions(&self) -> u64 {
        self.vertex_instructions + self.fragment_instructions
    }

    /// Accumulates another frame's counters (sequence totals).
    ///
    /// # Panics
    ///
    /// Panics if the shader-table shapes differ.
    pub fn merge(&mut self, other: &FrameActivity) {
        assert_eq!(
            self.vertex_shader_invocations.len(),
            other.vertex_shader_invocations.len(),
            "vertex shader table mismatch"
        );
        assert_eq!(
            self.fragment_shader_invocations.len(),
            other.fragment_shader_invocations.len(),
            "fragment shader table mismatch"
        );
        for (a, b) in self
            .vertex_shader_invocations
            .iter_mut()
            .zip(&other.vertex_shader_invocations)
        {
            *a += b;
        }
        for (a, b) in self
            .fragment_shader_invocations
            .iter_mut()
            .zip(&other.fragment_shader_invocations)
        {
            *a += b;
        }
        self.vertices_fetched += other.vertices_fetched;
        self.vertices_shaded += other.vertices_shaded;
        self.primitives_assembled += other.primitives_assembled;
        self.primitives_clipped += other.primitives_clipped;
        self.primitives_culled_backface += other.primitives_culled_backface;
        self.primitives_culled_degenerate += other.primitives_culled_degenerate;
        self.primitives_emitted += other.primitives_emitted;
        self.tile_bin_entries += other.tile_bin_entries;
        self.tiles_touched += other.tiles_touched;
        self.quads_rasterized += other.quads_rasterized;
        self.fragments_rasterized += other.fragments_rasterized;
        self.fragments_early_z_culled += other.fragments_early_z_culled;
        self.fragments_hsr_culled += other.fragments_hsr_culled;
        self.fragments_shaded += other.fragments_shaded;
        for (a, b) in self.texture_samples.iter_mut().zip(other.texture_samples) {
            *a += b;
        }
        self.blend_ops += other.blend_ops;
        self.vertex_instructions += other.vertex_instructions;
        self.fragment_instructions += other.fragment_instructions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_shader_vectors() {
        let a = FrameActivity::new(3, 5);
        assert_eq!(a.vertex_shader_invocations.len(), 3);
        assert_eq!(a.fragment_shader_invocations.len(), 5);
    }

    #[test]
    fn texture_memory_accesses_apply_filter_weights() {
        let mut a = FrameActivity::new(1, 1);
        a.texture_samples = [1, 1, 1, 1]; // nearest, linear, bilinear, trilinear
        assert_eq!(a.texture_memory_accesses(), 1 + 2 + 4 + 8);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = FrameActivity::new(1, 1);
        a.vertex_shader_invocations[0] = 2;
        a.fragments_shaded = 10;
        let mut b = FrameActivity::new(1, 1);
        b.vertex_shader_invocations[0] = 3;
        b.fragments_shaded = 5;
        b.texture_samples = [1, 0, 0, 2];
        a.merge(&b);
        assert_eq!(a.vertex_shader_invocations[0], 5);
        assert_eq!(a.fragments_shaded, 15);
        assert_eq!(a.texture_samples, [1, 0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = FrameActivity::new(1, 1);
        a.merge(&FrameActivity::new(2, 1));
    }

    #[test]
    fn total_instructions_sums_both_stages() {
        let mut a = FrameActivity::new(1, 1);
        a.vertex_instructions = 7;
        a.fragment_instructions = 11;
        assert_eq!(a.total_instructions(), 18);
    }
}
