//! Sampling strategies over explicit value sets (`prop::sample`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly picks one of the given values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "cannot select from an empty set");
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng_mut().gen_range(0..self.values.len());
        self.values[i].clone()
    }
}
