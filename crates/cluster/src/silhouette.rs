//! Silhouette scoring — an alternative cluster-quality criterion to the
//! BIC used by the paper, provided for the ablation study.
//!
//! The silhouette of a point is `(b − a) / max(a, b)` where `a` is its
//! mean distance to its own cluster and `b` the smallest mean distance
//! to any other cluster; the score of a clustering is the mean
//! silhouette over all points, in `[-1, 1]` (higher is better).
//!
//! The O(n²·d) distance pass runs on the blocked SoA kernel
//! ([`SoaPoints::dist_block`]): points are processed in fixed-size chunks
//! that fan out on the `megsim-exec` pool with ordered collection, and
//! within a chunk each point accumulates its per-cluster distance sums
//! tile by tile in ascending `j` order — the exact accumulation
//! sequence of the seed implementation
//! ([`crate::kmeans_reference::ReferenceKMeans::silhouette_score`], the
//! proptest oracle), so scores are bit-identical at any thread count.

use crate::kmeans::{KMeansResult, KMeansScratch};
use crate::matrix::{PointMatrix, SoaPoints};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed chunk of points per pool task (and tile height of the blocked
/// kernel). Chunk boundaries depend only on `n`, never on the thread
/// count.
const POINT_CHUNK: usize = 128;

/// Tile width of the blocked kernel: how many `j` columns stream per
/// pass. 256 columns × 128 rows of f64 is a 256 KiB tile — resident in
/// L2 while each dimension's column makes one pass over it.
const J_BLOCK: usize = 256;

/// Errors of the ablation-facing silhouette entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SilhouetteError {
    /// The clustering labels a different number of points than the
    /// dataset holds.
    LengthMismatch {
        /// Rows in the dataset.
        points: usize,
        /// Labels in the clustering.
        labels: usize,
    },
    /// The dataset has no points.
    EmptyData,
    /// Silhouette selection needs at least two candidate clusters.
    MaxKTooSmall(usize),
    /// A sampled score was requested with a zero-point sample budget.
    EmptySample,
}

impl std::fmt::Display for SilhouetteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SilhouetteError::LengthMismatch { points, labels } => {
                write!(
                    f,
                    "clustering labels {labels} points but the dataset has {points}"
                )
            }
            SilhouetteError::EmptyData => write!(f, "cannot score an empty dataset"),
            SilhouetteError::MaxKTooSmall(max_k) => {
                write!(f, "silhouette selection needs max_k >= 2, got {max_k}")
            }
            SilhouetteError::EmptySample => {
                write!(f, "sampled silhouette needs a sample budget of at least 1")
            }
        }
    }
}

impl std::error::Error for SilhouetteError {}

/// Mean silhouette coefficient of a clustering.
///
/// Returns `Ok(0.0)` for a single cluster or a single point (the
/// coefficient is undefined) — the conventional "no structure
/// measurable" value. Singleton clusters contribute a silhouette of `0`
/// per the standard definition.
///
/// # Errors
///
/// [`SilhouetteError::LengthMismatch`] if labels and points disagree in
/// length.
pub fn try_silhouette_score(
    data: &PointMatrix,
    result: &KMeansResult,
) -> Result<f64, SilhouetteError> {
    if data.len() != result.labels.len() {
        return Err(SilhouetteError::LengthMismatch {
            points: data.len(),
            labels: result.labels.len(),
        });
    }
    let k = result.k();
    let n = data.len();
    if k < 2 || n < 2 {
        return Ok(0.0);
    }
    let sizes = result.cluster_sizes();
    let soa = SoaPoints::from_matrix(data);
    // Per-point silhouette contributions, chunked on the pool. The
    // chunks come back in index order, so the final reduction below
    // adds them in the same fixed sequence at any thread count (and a
    // skipped point's 0.0 cannot perturb the sum: every partial total
    // is non-negative-zero, and x + 0.0 ≡ x).
    let contributions = megsim_exec::par_map_chunks(n, POINT_CHUNK, |is| {
        silhouette_chunk(&soa, &result.labels, &sizes, k, is)
    });
    let mut total = 0.0;
    for chunk in &contributions {
        for &c in chunk {
            total += c;
        }
    }
    Ok(total / n as f64)
}

/// Panicking convenience wrapper over [`try_silhouette_score`].
///
/// # Panics
///
/// Panics if labels and points disagree in length.
pub fn silhouette_score(data: &PointMatrix, result: &KMeansResult) -> f64 {
    match try_silhouette_score(data, result) {
        Ok(score) => score,
        Err(e) => panic!("labels/points mismatch: {e}"),
    }
}

/// Sampling policy of the silhouette entry points: score every point
/// (the exact O(n²·d) pass) or a seeded reservoir of at most
/// `max_points` of them (O(n·m·d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SilhouetteSample {
    /// Exact score over every point.
    Full,
    /// Mean over a seeded uniform sample of at most `max_points`
    /// points. Each sampled point's own coefficient is still *exact*
    /// (its distance sums run against the full population), only the
    /// outer mean is subsampled.
    Sampled {
        /// Sample budget `m`. A budget of `n` or more degrades to the
        /// exact score.
        max_points: usize,
        /// Reservoir seed (fixed sample for a fixed `(n, m, seed)`).
        seed: u64,
    },
}

/// Seeded uniform sample of `max_points` distinct indices out of
/// `0..n` (Algorithm R), returned sorted so tile accumulation walks
/// memory forward.
fn sample_indices(n: usize, max_points: usize, seed: u64) -> Vec<usize> {
    debug_assert!(max_points < n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sample: Vec<usize> = (0..max_points).collect();
    for i in max_points..n {
        let j = rng.gen_range(0..i + 1);
        if j < max_points {
            sample[j] = i;
        }
    }
    sample.sort_unstable();
    sample
}

/// Sampled counterpart of [`try_silhouette_score`]: the mean silhouette
/// of a seeded reservoir of at most `max_points` points, never touching
/// the full O(n²) distance triangle. Each sampled point is scored
/// exactly (distances to *all* `n` points, via the gather-row tile
/// kernel [`SoaPoints::dist_block_rows`], computed and discarded per
/// block), so the estimate is unbiased and the cost is O(n·m·d).
///
/// With `max_points >= n` this is bitwise [`try_silhouette_score`].
///
/// # Errors
///
/// [`SilhouetteError::LengthMismatch`] if labels and points disagree,
/// [`SilhouetteError::EmptySample`] if `max_points == 0`.
pub fn try_sampled_silhouette_score(
    data: &PointMatrix,
    result: &KMeansResult,
    max_points: usize,
    seed: u64,
) -> Result<f64, SilhouetteError> {
    if max_points == 0 {
        return Err(SilhouetteError::EmptySample);
    }
    if data.len() != result.labels.len() {
        return Err(SilhouetteError::LengthMismatch {
            points: data.len(),
            labels: result.labels.len(),
        });
    }
    let n = data.len();
    if max_points >= n {
        return try_silhouette_score(data, result);
    }
    let k = result.k();
    if k < 2 || n < 2 {
        return Ok(0.0);
    }
    let sizes = result.cluster_sizes();
    let soa = SoaPoints::from_matrix(data);
    let sample = sample_indices(n, max_points, seed);
    let m = sample.len();
    let contributions = megsim_exec::par_map_chunks(m, POINT_CHUNK, |is| {
        sampled_chunk(&soa, &result.labels, &sizes, k, &sample[is])
    });
    let mut total = 0.0;
    for chunk in &contributions {
        for &c in chunk {
            total += c;
        }
    }
    Ok(total / m as f64)
}

/// Per-chunk kernel: silhouette contribution of every point in `is`
/// (0.0 for points the definition skips). Distance sums accumulate per
/// cluster over [`J_BLOCK`]-wide tiles in ascending `j` order, matching
/// the seed implementation's op sequence pair for pair.
fn silhouette_chunk(
    soa: &SoaPoints,
    labels: &[usize],
    sizes: &[usize],
    k: usize,
    is: std::ops::Range<usize>,
) -> Vec<f64> {
    let n = soa.len();
    let h = is.len();
    // Per-point per-cluster distance sums for the whole chunk.
    let mut sums = vec![0.0f64; h * k];
    let mut tile = vec![0.0f64; h * J_BLOCK];
    let mut j0 = 0;
    while j0 < n {
        let js = j0..(j0 + J_BLOCK).min(n);
        let w = js.len();
        soa.dist_block(is.clone(), js.clone(), &mut tile);
        let ljs = &labels[js.clone()];
        // The seed implementation skips j == i; including it adds
        // d(i, i) = +0.0 to a sum of non-negative terms, which is a
        // bitwise no-op, so the branch can go. (Sums are accumulated
        // for singleton-own points too — their values go unused.)
        //
        // Four rows interleave per pass: each row's per-cluster sums
        // are an independent serial FP chain, so interleaving keeps
        // four adds in flight without reordering any single sum.
        let mut bi = 0;
        while bi + 4 <= h {
            let (r0, rest) = sums[bi * k..].split_at_mut(k);
            let (r1, rest) = rest.split_at_mut(k);
            let (r2, rest) = rest.split_at_mut(k);
            let r3 = &mut rest[..k];
            let t = &tile[bi * w..(bi + 4) * w];
            for (bj, &l) in ljs.iter().enumerate() {
                r0[l] += t[bj];
                r1[l] += t[w + bj];
                r2[l] += t[2 * w + bj];
                r3[l] += t[3 * w + bj];
            }
            bi += 4;
        }
        for bi in bi..h {
            let row = &tile[bi * w..(bi + 1) * w];
            let srow = &mut sums[bi * k..(bi + 1) * k];
            for (&d, &l) in row.iter().zip(ljs) {
                srow[l] += d;
            }
        }
        j0 = js.end;
    }
    is.clone()
        .enumerate()
        .map(|(bi, i)| {
            let own = labels[i];
            if sizes[own] <= 1 {
                return 0.0; // silhouette of a singleton is 0
            }
            let srow = &sums[bi * k..(bi + 1) * k];
            let a = srow[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| srow[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                (b - a) / denom
            } else {
                0.0
            }
        })
        .collect()
}

/// Gather-index sibling of [`silhouette_chunk`]: exact silhouette
/// contribution of every *global* index in `is`, distance sums
/// accumulated per cluster over [`J_BLOCK`]-wide tiles in ascending `j`
/// order. Cluster sizes are full-population, so each sampled point's
/// coefficient equals what the exact pass computes for it.
fn sampled_chunk(
    soa: &SoaPoints,
    labels: &[usize],
    sizes: &[usize],
    k: usize,
    is: &[usize],
) -> Vec<f64> {
    let n = soa.len();
    let h = is.len();
    let mut sums = vec![0.0f64; h * k];
    let mut tile = vec![0.0f64; h * J_BLOCK];
    let mut j0 = 0;
    while j0 < n {
        let js = j0..(j0 + J_BLOCK).min(n);
        let w = js.len();
        soa.dist_block_rows(is, js.clone(), &mut tile);
        let ljs = &labels[js.clone()];
        for bi in 0..h {
            let row = &tile[bi * w..(bi + 1) * w];
            let srow = &mut sums[bi * k..(bi + 1) * k];
            for (&d, &l) in row.iter().zip(ljs) {
                srow[l] += d;
            }
        }
        j0 = js.end;
    }
    is.iter()
        .enumerate()
        .map(|(bi, &i)| {
            let own = labels[i];
            if sizes[own] <= 1 {
                return 0.0;
            }
            let srow = &sums[bi * k..(bi + 1) * k];
            let a = srow[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| srow[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                (b - a) / denom
            } else {
                0.0
            }
        })
        .collect()
}

/// Picks the `k` in `[2, max_k]` with the best silhouette — the
/// alternative to the §III-F BIC search used in the ablation study.
/// All candidate fits share one k-means scratch (the data never
/// changes), so the loop allocates O(1) in steady state.
///
/// Returns the best clustering and its score.
///
/// # Errors
///
/// [`SilhouetteError::EmptyData`] if `data` is empty,
/// [`SilhouetteError::MaxKTooSmall`] if `max_k < 2`.
pub fn try_best_by_silhouette(
    data: &PointMatrix,
    max_k: usize,
    seed: u64,
) -> Result<(KMeansResult, f64), SilhouetteError> {
    try_best_by_silhouette_with(data, max_k, seed, SilhouetteSample::Full)
}

/// [`try_best_by_silhouette`] with an explicit [`SilhouetteSample`]
/// policy: `Full` is bitwise the original selection; `Sampled` scores
/// every candidate `k` on the same seeded point sample, cutting the
/// per-candidate cost from O(n²·d) to O(n·m·d) so silhouette selection
/// stays usable at streaming scales.
///
/// # Errors
///
/// [`SilhouetteError::EmptyData`] if `data` is empty,
/// [`SilhouetteError::MaxKTooSmall`] if `max_k < 2`,
/// [`SilhouetteError::EmptySample`] if a sampled policy has a zero
/// budget.
pub fn try_best_by_silhouette_with(
    data: &PointMatrix,
    max_k: usize,
    seed: u64,
    sample: SilhouetteSample,
) -> Result<(KMeansResult, f64), SilhouetteError> {
    use crate::kmeans::{kmeans_with_scratch, KMeansConfig};
    if data.is_empty() {
        return Err(SilhouetteError::EmptyData);
    }
    if max_k < 2 {
        return Err(SilhouetteError::MaxKTooSmall(max_k));
    }
    if let SilhouetteSample::Sampled { max_points: 0, .. } = sample {
        return Err(SilhouetteError::EmptySample);
    }
    let mut scratch = KMeansScratch::default();
    let mut best: Option<(KMeansResult, f64)> = None;
    for k in 2..=max_k.min(data.len()) {
        let result = kmeans_with_scratch(
            data,
            &KMeansConfig::new(k).with_seed(seed ^ k as u64),
            &mut scratch,
        );
        let score = match sample {
            SilhouetteSample::Full => try_silhouette_score(data, &result)?,
            SilhouetteSample::Sampled {
                max_points,
                seed: sample_seed,
            } => try_sampled_silhouette_score(data, &result, max_points, sample_seed)?,
        };
        #[allow(clippy::unnecessary_map_or)]
        let better = best.as_ref().map_or(true, |(_, s)| score > *s);
        if better {
            best = Some((result, score));
        }
    }
    // max_k >= 2 but data may hold a single point: no candidate ran.
    best.ok_or(SilhouetteError::MaxKTooSmall(1))
}

/// Panicking convenience wrapper over [`try_best_by_silhouette`].
///
/// # Panics
///
/// Panics if `data` is empty or `max_k < 2`.
pub fn best_by_silhouette(data: &PointMatrix, max_k: usize, seed: u64) -> (KMeansResult, f64) {
    match try_best_by_silhouette(data, max_k, seed) {
        Ok(best) => best,
        Err(SilhouetteError::MaxKTooSmall(m)) => {
            panic!("silhouette selection needs at least k = 2, got {m}")
        }
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs() -> PointMatrix {
        let mut pts = Vec::new();
        for i in 0..12 {
            let j = (i as f64 * 0.9).sin() * 0.3;
            pts.push(vec![j, j * 0.5]);
            pts.push(vec![10.0 + j, 10.0 - j]);
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        let s = silhouette_score(&data, &r);
        assert!(s > 0.9, "silhouette = {s}");
    }

    #[test]
    fn overclustered_fit_scores_lower() {
        let data = blobs();
        let good = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        let over = kmeans(&data, &KMeansConfig::new(8).with_seed(1));
        assert!(silhouette_score(&data, &good) > silhouette_score(&data, &over));
    }

    #[test]
    fn single_cluster_scores_zero() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(1));
        assert_eq!(silhouette_score(&data, &r), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let data = PointMatrix::from_rows(
            (0..20)
                .map(|i| vec![((i * 13) % 17) as f64, ((i * 7) % 11) as f64])
                .collect(),
        );
        for k in 2..6 {
            let r = kmeans(&data, &KMeansConfig::new(k).with_seed(2));
            let s = silhouette_score(&data, &r);
            assert!((-1.0..=1.0).contains(&s), "k={k}: {s}");
        }
    }

    #[test]
    fn best_by_silhouette_finds_two_blobs() {
        let data = blobs();
        let (result, score) = best_by_silhouette(&data, 6, 3);
        assert_eq!(result.k(), 2, "score = {score}");
        assert!(score > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least k = 2")]
    fn best_by_silhouette_rejects_max_k_one() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let _ = best_by_silhouette(&data, 1, 0);
    }

    #[test]
    fn mismatched_lengths_are_an_error_not_a_panic() {
        let data = blobs();
        let mut r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        r.labels.pop();
        assert_eq!(
            try_silhouette_score(&data, &r),
            Err(SilhouetteError::LengthMismatch {
                points: 24,
                labels: 23
            })
        );
    }

    #[test]
    #[should_panic(expected = "labels/points mismatch")]
    fn panicking_wrapper_still_panics_on_mismatch() {
        let data = blobs();
        let mut r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        r.labels.pop();
        let _ = silhouette_score(&data, &r);
    }

    #[test]
    fn singleton_clusters_contribute_zero() {
        // Two tight pairs plus one isolated point: force a clustering
        // where the isolated point is a singleton cluster. Its own
        // contribution must be exactly 0 and the score stays finite.
        let data = PointMatrix::from_rows(vec![
            vec![0.0],
            vec![0.1],
            vec![10.0],
            vec![10.1],
            vec![100.0],
        ]);
        let result = KMeansResult {
            centroids: vec![vec![0.05], vec![10.05], vec![100.0]],
            labels: vec![0, 0, 1, 1, 2],
            wcss: 0.01,
            iterations: 1,
        };
        let s = try_silhouette_score(&data, &result).expect("valid inputs");
        assert!(s.is_finite() && s > 0.0, "score = {s}");
        // All-singletons degenerate clustering: every point skipped, 0.
        let degenerate = KMeansResult {
            centroids: (0..5).map(|i| vec![i as f64]).collect(),
            labels: (0..5).collect(),
            wcss: 0.0,
            iterations: 1,
        };
        assert_eq!(try_silhouette_score(&data, &degenerate), Ok(0.0));
    }

    #[test]
    fn try_best_by_silhouette_reports_errors() {
        assert_eq!(
            try_best_by_silhouette(&PointMatrix::from_rows(vec![]), 4, 0),
            Err(SilhouetteError::EmptyData)
        );
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]);
        assert_eq!(
            try_best_by_silhouette(&data, 1, 0),
            Err(SilhouetteError::MaxKTooSmall(1))
        );
    }

    /// The golden paper-shape suite's cluster geometry: the two-phase
    /// workload of the core pipeline's golden test, post-normalization
    /// shape (two far-apart phases, period-18 jitter sub-structure).
    fn paper_shape() -> PointMatrix {
        PointMatrix::from_rows(
            (0..60)
                .map(|i| {
                    let jitter = (i as f64 * 0.7).sin() * 5.0;
                    if i % 2 == 0 {
                        vec![100.0 + jitter, 0.0, 500.0 + jitter, 0.0, 50.0]
                    } else {
                        vec![0.0, 900.0 + jitter, 0.0, 4000.0 + jitter, 300.0]
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn sampled_with_full_budget_is_bitwise_full() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        let full = try_silhouette_score(&data, &r).unwrap();
        for budget in [data.len(), data.len() + 5, usize::MAX] {
            let sampled = try_sampled_silhouette_score(&data, &r, budget, 7).unwrap();
            assert_eq!(sampled.to_bits(), full.to_bits());
        }
    }

    #[test]
    fn sampled_score_tracks_full_on_the_paper_shape_suite() {
        // The ISSUE 9 acceptance bar: sampled-silhouette quality within
        // 2 % of the full score on the golden paper-shape suite.
        let data = paper_shape();
        for k in [2usize, 4, 7] {
            let r = kmeans(&data, &KMeansConfig::new(k).with_seed(42));
            let full = try_silhouette_score(&data, &r).unwrap();
            let sampled = try_sampled_silhouette_score(&data, &r, 36, 42).unwrap();
            assert!(
                (sampled - full).abs() <= 0.02 * full.abs().max(1e-9),
                "k={k}: sampled {sampled} vs full {full}"
            );
        }
    }

    #[test]
    fn sampled_selection_matches_full_on_the_paper_shape_suite() {
        // Selection quality, not just the score: the sampled policy
        // must pick a k whose *full* silhouette is within 2 % of the
        // full policy's winner.
        let data = paper_shape();
        let (full_best, full_score) =
            try_best_by_silhouette_with(&data, 8, 42, SilhouetteSample::Full).unwrap();
        let (sampled_best, _) = try_best_by_silhouette_with(
            &data,
            8,
            42,
            SilhouetteSample::Sampled {
                max_points: 24,
                seed: 42,
            },
        )
        .unwrap();
        let sampled_full_score = try_silhouette_score(&data, &sampled_best).unwrap();
        assert!(
            sampled_full_score >= full_score - 0.02 * full_score.abs(),
            "sampled winner k={} scores {} vs full winner k={} at {}",
            sampled_best.k(),
            sampled_full_score,
            full_best.k(),
            full_score
        );
    }

    #[test]
    fn full_policy_is_bitwise_the_original_selection() {
        let data = blobs();
        let (a, sa) = try_best_by_silhouette(&data, 6, 3).unwrap();
        let (b, sb) = try_best_by_silhouette_with(&data, 6, 3, SilhouetteSample::Full).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }

    #[test]
    fn sampled_rejects_zero_budget() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        assert_eq!(
            try_sampled_silhouette_score(&data, &r, 0, 1),
            Err(SilhouetteError::EmptySample)
        );
        assert_eq!(
            try_best_by_silhouette_with(
                &data,
                4,
                0,
                SilhouetteSample::Sampled {
                    max_points: 0,
                    seed: 0
                }
            ),
            Err(SilhouetteError::EmptySample)
        );
    }

    #[test]
    fn sampled_identical_across_thread_counts() {
        let data = PointMatrix::from_rows(
            (0..500)
                .map(|i| {
                    let c = (i % 3) as f64 * 40.0;
                    vec![c + (i as f64 * 0.37).sin(), c + (i as f64 * 0.11).cos()]
                })
                .collect(),
        );
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(4));
        let mut scores = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            scores.push(
                try_sampled_silhouette_score(&data, &r, 160, 9)
                    .unwrap()
                    .to_bits(),
            );
        }
        megsim_exec::set_threads(0);
        assert_eq!(scores[0], scores[1]);
        assert_eq!(scores[1], scores[2]);
    }

    #[test]
    fn identical_across_thread_counts() {
        // Big enough that several point chunks fan out.
        let data = PointMatrix::from_rows(
            (0..300)
                .map(|i| {
                    let c = (i % 3) as f64 * 40.0;
                    vec![c + (i as f64 * 0.37).sin(), c + (i as f64 * 0.11).cos()]
                })
                .collect(),
        );
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(4));
        let mut scores = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            scores.push(silhouette_score(&data, &r).to_bits());
        }
        megsim_exec::set_threads(0);
        assert_eq!(scores[0], scores[1]);
        assert_eq!(scores[1], scores[2]);
    }
}
