//! Property tests of the synthetic benchmark suite: structural
//! invariants that must hold for any (scale, seed) combination.

use proptest::prelude::*;

use megsim_workloads::{build, BENCHMARKS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_benchmark_builds_and_covers_its_timeline(
        bench in 0usize..8,
        scale in 0.002f64..0.03,
        seed in 0u64..1000,
    ) {
        let info = &BENCHMARKS[bench];
        let w = build(info, scale, seed);
        // Timeline tiles the frame range exactly.
        let mut expected_start = 0usize;
        for s in w.timeline() {
            prop_assert_eq!(s.start, expected_start);
            prop_assert!(s.len > 0);
            prop_assert!(s.template < w.templates().len());
            expected_start += s.len;
        }
        prop_assert_eq!(expected_start, w.frames());
        // Shader counts match Table II.
        prop_assert_eq!(w.shaders().vertex_count(), info.vertex_shaders);
        prop_assert_eq!(w.shaders().fragment_count(), info.fragment_shaders);
    }

    #[test]
    fn frames_reference_only_known_shaders(
        bench in 0usize..8,
        seed in 0u64..100,
    ) {
        let info = &BENCHMARKS[bench];
        let w = build(info, 0.004, seed);
        for i in 0..w.frames() {
            let f = w.frame(i);
            prop_assert!(!f.draws.is_empty(), "frame {i} empty");
            for d in &f.draws {
                prop_assert!((d.vertex_shader.0 as usize) < info.vertex_shaders);
                prop_assert!((d.fragment_shader.0 as usize) < info.fragment_shaders);
            }
        }
    }

    #[test]
    fn segment_lookup_matches_linear_scan(
        bench in 0usize..8,
        seed in 0u64..100,
        probe in 0.0f64..1.0,
    ) {
        let w = build(&BENCHMARKS[bench], 0.01, seed);
        let i = ((w.frames() - 1) as f64 * probe) as usize;
        let fast = w.segment_at(i);
        let slow = w
            .timeline()
            .iter()
            .find(|s| i >= s.start && i < s.start + s.len)
            .expect("timeline covers every frame");
        prop_assert_eq!(fast.start, slow.start);
        prop_assert_eq!(fast.template, slow.template);
    }

    #[test]
    fn same_template_frames_share_shader_set(
        bench in 0usize..8,
        seed in 0u64..50,
    ) {
        use std::collections::BTreeSet;
        let w = build(&BENCHMARKS[bench], 0.01, seed);
        // Find two segments with the same template.
        let timeline = w.timeline();
        let mut by_template = std::collections::HashMap::new();
        for s in timeline {
            by_template.entry(s.template).or_insert_with(Vec::new).push(*s);
        }
        for (_, segs) in by_template.iter().filter(|(_, v)| v.len() >= 2) {
            let shaders_of = |frame_idx: usize| -> BTreeSet<u32> {
                w.frame(frame_idx)
                    .draws
                    .iter()
                    .map(|d| d.vertex_shader.0)
                    .collect()
            };
            let a = shaders_of(segs[0].start + segs[0].len / 2);
            let b = shaders_of(segs[1].start + segs[1].len / 2);
            // Recurring segments draw from the same shader pool — the
            // property MEGsim's clustering exploits. (Counts may vary,
            // zero-count classes may drop out, so subset either way.)
            prop_assert!(a.is_subset(&b) || b.is_subset(&a), "{a:?} vs {b:?}");
        }
    }
}
