//! The cycle-level TBR GPU model.
//!
//! Timing is *timestamp-based*: every hardware unit keeps a local clock
//! advanced by its per-item occupancy and by the memory latencies it
//! observes; units that run concurrently in hardware contribute the
//! maximum of their clocks, units that serialize contribute the sum.
//! This mirrors the two-phase structure of a Tile-Based Rendering GPU:
//!
//! 1. **Geometry + Tiling phase** — Vertex Fetcher, Vertex Processors,
//!    Primitive Assembly and the Polygon List Builder run as a pipeline
//!    over the whole frame; the phase takes as long as its slowest unit.
//! 2. **Raster phase** — tiles are processed one at a time; inside a
//!    tile the Rasterizer, Early-Z, the four Fragment Processors and the
//!    Blending Unit pipeline against each other. The per-tile flush of
//!    final colors to the frame buffer overlaps the next tile's work
//!    (double-buffered on-chip tile memory), so the phase is the maximum
//!    of accumulated tile work and accumulated flush traffic.
//!
//! # The fast path
//!
//! This implementation services the address streams the units produce
//! in **same-line runs**: sequential vertex fetches, polygon-list
//! entries (four 16-byte entries per 64-byte line) and texel
//! footprints mostly land on the line of their predecessor, so each
//! run costs one tag lookup ([`Cache::access_run`]) plus closed-form
//! clock bookkeeping instead of per-access probes. Coalescing is
//! bit-safe because the first access of a run leaves its line resident
//! and most recently used while nothing else touches that cache before
//! the run ends — the remaining accesses are hits by construction and
//! hits never generate memory traffic, so every cycle count, stat,
//! LRU and row-buffer decision matches the scalar model. Per-tile and
//! per-fragment heap allocation is eliminated by [`TimingScratch`],
//! and texture samplers are memoized per primitive
//! ([`megsim_gfx::texture::TextureDesc::lod_sampler`]). The
//! pre-optimization model is retained in [`crate::timing_reference`]
//! and pinned bit-for-bit by proptests there.

use megsim_funcsim::{FrameTrace, RenderMode};
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::ShaderTable;
use megsim_gfx::texture::LodSampler;
use megsim_mem::{AddressSpace, Cache, MemoryHierarchy};

use megsim_mem::RunCoalescer;

use crate::config::GpuConfig;
use crate::shard;
use crate::stats::{FrameStats, UnitBusy};

/// Raster-phase execution policy: whether [`Gpu::simulate_frame`]
/// shards its tile loop across the [`megsim_exec`] worker pool.
///
/// Sharding is the record/replay split of [`crate::shard`]: parallel
/// workers record per-tile memory-traffic logs, the caller thread
/// replays them tile-index-ascending against the shared caches and
/// DRAM. The result is bit-identical to the sequential loop in every
/// mode, so the policy only trades overhead against parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Shard when it can help: more than one worker thread, not nested
    /// inside a pool worker (frame-level parallelism already owns the
    /// pool there), and at least two tiles to overlap.
    #[default]
    Auto,
    /// Always run the sequential raster loop.
    Off,
    /// Always run the record/replay path, even single-threaded — used
    /// by tests and benches to pin its bit-identity and cost at every
    /// thread count.
    Force,
}

/// Reusable buffers of the raster phase. Owned by the [`Gpu`] so that
/// steady-state frame simulation performs no heap allocation: per-FP
/// clocks are zeroed per tile, sample addresses and per-primitive
/// samplers are cleared in place.
#[derive(Debug, Default)]
pub(crate) struct TimingScratch {
    /// Per-FP ALU clocks (one slot per Fragment Processor).
    fp_clock: Vec<u64>,
    /// Per-FP texture-pipe clocks.
    tex_clock: Vec<u64>,
    /// Memoized samplers of the primitive currently being shaded
    /// (one per texture-sampling shader instruction).
    samplers: Vec<LodSampler>,
}

/// The simulated GPU. Caches and DRAM state persist across frames
/// (warm-cache simulation), while statistics are attributed per frame.
/// The field visibility is `pub(crate)` rather than private: the
/// multi-GPU rig ([`crate::multi_gpu`]) drives the per-GPU front end
/// (L1 caches, clocks) directly while routing the L2 + DRAM stream
/// through a [`megsim_mem::MemoryPool`] topology.
#[derive(Debug)]
pub struct Gpu {
    pub(crate) config: GpuConfig,
    pub(crate) vertex_cache: Cache,
    pub(crate) texture_caches: Vec<Cache>,
    pub(crate) tile_cache: Cache,
    pub(crate) memory: MemoryHierarchy,
    /// Monotonic global cycle counter across the whole simulation.
    pub(crate) now: u64,
    pub(crate) frame_index: u64,
    pub(crate) scratch: TimingScratch,
    pub(crate) shard_mode: ShardMode,
}

impl Gpu {
    /// Builds a cold GPU from its configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            vertex_cache: Cache::new(config.vertex_cache.clone()),
            texture_caches: (0..config.fragment_processors)
                .map(|_| Cache::new(config.texture_cache.clone()))
                .collect(),
            tile_cache: Cache::new(config.tile_cache.clone()),
            memory: MemoryHierarchy::new(config.l2.clone(), config.dram),
            now: 0,
            frame_index: 0,
            scratch: TimingScratch::default(),
            shard_mode: ShardMode::default(),
            config,
        }
    }

    /// Sets the raster-phase sharding policy (default [`ShardMode::Auto`]).
    /// Output is bit-identical under every mode; see [`ShardMode`].
    pub fn set_shard_mode(&mut self, mode: ShardMode) {
        self.shard_mode = mode;
    }

    /// The active raster-phase sharding policy.
    pub fn shard_mode(&self) -> ShardMode {
        self.shard_mode
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Global cycle count since construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Writes back every dirty line of the shared L2 (device idle time
    /// at the end of a warm sequence) and returns the number of
    /// writebacks produced. The caller attributes them to the last
    /// simulated frame's L2 counters.
    pub fn drain_l2(&mut self) -> u64 {
        self.memory.flush_l2()
    }

    /// Simulates one frame from its functional trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references shaders missing from `shaders`.
    pub fn simulate_frame(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        // Per-frame stat attribution: reset counters, keep state warm.
        self.vertex_cache.reset_stats();
        for c in &mut self.texture_caches {
            c.reset_stats();
        }
        self.tile_cache.reset_stats();
        self.memory.reset_stats();

        let frame_start = self.now;
        let mut unit_busy = UnitBusy::default();
        let geometry_cycles = self.geometry_phase(trace, frame_start, &mut unit_busy);
        let raster_base = frame_start + geometry_cycles;
        let (raster_cycles, color_accesses, depth_accesses) = if self.use_shards(trace) {
            self.raster_phase_sharded(trace, shaders, raster_base, &mut unit_busy)
        } else {
            self.raster_phase(trace, shaders, raster_base, &mut unit_busy)
        };
        let cycles = geometry_cycles + raster_cycles + self.config.frame_overhead_cycles;
        self.now = frame_start + cycles;
        self.frame_index += 1;

        let mut texture_stats = megsim_mem::CacheStats::default();
        for c in &self.texture_caches {
            texture_stats.merge(c.stats());
        }
        FrameStats {
            cycles,
            geometry_cycles,
            raster_cycles,
            instructions: trace.activity.total_instructions(),
            vertex_cache: *self.vertex_cache.stats(),
            texture_cache: texture_stats,
            tile_cache: *self.tile_cache.stats(),
            memory: self.memory.stats(),
            color_buffer_accesses: color_accesses,
            depth_buffer_accesses: depth_accesses,
            // Shared by reference with the trace — no deep clone of the
            // per-shader counter vectors.
            activity: std::sync::Arc::clone(&trace.activity),
            unit_busy,
        }
    }

    /// Geometry Pipeline + Tiling Engine. Returns the phase duration.
    /// Crate-visible so the multi-GPU rig can run the (duplicated)
    /// geometry phase per GPU outside [`Self::simulate_frame`].
    pub(crate) fn geometry_phase(
        &mut self,
        trace: &FrameTrace,
        base: u64,
        busy: &mut UnitBusy,
    ) -> u64 {
        let cfg = &self.config;
        let vc_latency = cfg.vertex_cache.latency;
        let vc_shift = cfg.vertex_cache.line_size.trailing_zeros();
        // Unit clocks, relative to `base`.
        let mut vf_clock = 0u64; // Vertex Fetcher (in-order, blocking)
        let mut vp_busy = 0u64; // total VP work, spread over the array
        let mut pa_clock = 0u64; // Primitive Assembly
        for draw in &trace.geometry {
            // Vertex Fetcher: one vertex per cycle; a vertex-cache miss
            // blocks the fetcher for the refill latency. Sequential
            // vertices usually share a line: a run of `count` same-line
            // fetches costs one lookup; the `count - 1` guaranteed hits
            // each occupy the fetcher for `1 + latency` cycles.
            let addrs = &draw.vertex_fetch_addresses;
            let mut i = 0;
            while i < addrs.len() {
                let addr = addrs[i];
                let line = addr >> vc_shift;
                let mut j = i + 1;
                while j < addrs.len() && addrs[j] >> vc_shift == line {
                    j += 1;
                }
                let count = (j - i) as u64;
                vf_clock += 1;
                let acc = self.vertex_cache.access_run(addr, false, count);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + vf_clock, true);
                }
                if acc.hit {
                    vf_clock += vc_latency;
                } else {
                    let fill = self.memory.access(addr, base + vf_clock, false);
                    vf_clock += fill.latency;
                }
                vf_clock += (count - 1) * (1 + vc_latency);
                i = j;
            }
            // Vertex Processors: scalar, one instruction per cycle.
            vp_busy += u64::from(draw.vertices_shaded) * u64::from(draw.vertex_shader_instructions);
            // Primitive Assembly consumes one vertex per cycle.
            pa_clock += u64::from(draw.vertices_shaded) * cfg.prim_assembly_cycles_per_vertex;
        }
        let vp_clock = vp_busy.div_ceil(cfg.vertex_processors as u64 * cfg.vertex_issue_width);

        // Polygon List Builder: one list entry per primitive-tile pair,
        // written through the Tile cache (four 16-byte entries per
        // line, serviced as runs). Immediate-mode rendering has no
        // Tiling Engine at all.
        let tc_latency = cfg.tile_cache.latency;
        let tc_shift = cfg.tile_cache.line_size.trailing_zeros();
        let plb_window = cfg.plb_write_window;
        let mut plb_clock = 0u64;
        let mut traced_entries = 0u64;
        let tiling_tiles: &[megsim_funcsim::TileTrace] = if trace.mode == RenderMode::Immediate {
            &[]
        } else {
            &trace.tiles
        };
        for tile in tiling_tiles {
            let entries = tile.prims.len() as u64;
            let mut n = 0u64;
            while n < entries {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n);
                let line = addr >> tc_shift;
                let mut m = n + 1;
                while m < entries
                    && AddressSpace::polygon_list_entry(tile.tile_index, m) >> tc_shift == line
                {
                    m += 1;
                }
                let count = m - n;
                plb_clock += 1;
                let acc = self.tile_cache.access_run(addr, true, count);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, base + plb_clock, true);
                }
                if !acc.hit {
                    // Write-allocate fill; posted writes hide up to an
                    // L2 latency of the fill before backpressure bites.
                    let fill = self.memory.access(addr, base + plb_clock, false);
                    let arrival = fill.ready_at.saturating_sub(base);
                    plb_clock = (plb_clock + 1).max(arrival.saturating_sub(plb_window));
                } else {
                    plb_clock += tc_latency;
                }
                plb_clock += (count - 1) * (1 + tc_latency);
                n = m;
            }
            traced_entries += entries;
        }
        // Bin entries whose primitives produced no fragments in a tile
        // do not appear in the trace; charge their occupancy.
        plb_clock += trace
            .activity
            .tile_bin_entries
            .saturating_sub(traced_entries);

        busy.vertex_fetch += vf_clock;
        busy.vertex_alu += vp_clock;
        busy.prim_assembly += pa_clock;
        busy.polygon_list_write += plb_clock;

        // The four units pipeline against each other; the phase lasts as
        // long as the slowest, plus a pipeline-fill term bounded by the
        // vertex queue depth.
        let fill = u64::from(self.config.vertex_queue.entries);
        vf_clock.max(vp_clock).max(pa_clock).max(plb_clock) + fill
    }

    /// Whether this frame's raster phase runs the tile-sharded
    /// record/replay path instead of the sequential loop.
    fn use_shards(&self, trace: &FrameTrace) -> bool {
        match self.shard_mode {
            ShardMode::Off => false,
            ShardMode::Force => true,
            ShardMode::Auto => {
                trace.tiles.len() >= 2 && megsim_exec::thread_count() > 1 && !megsim_exec::in_pool()
            }
        }
    }

    /// Tile-sharded raster phase: parallel [`shard::record_tiles`]
    /// workers over fixed tile ranges, merged tile-index-ascending by
    /// [`shard::replay_shard`] on this thread via
    /// [`megsim_exec::shard_merge`]. Bit-identical to [`Self::raster_phase`]
    /// at any thread count (pinned by the `shard` oracle tests and
    /// `tests/determinism.rs`).
    fn raster_phase_sharded(
        &mut self,
        trace: &FrameTrace,
        shaders: &ShaderTable,
        base: u64,
        busy: &mut UnitBusy,
    ) -> (u64, u64, u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.tex_clock.resize(self.config.fragment_processors, 0);
        // Field-level borrow split: the record closure shares the
        // config/trace/shaders read-only across workers while the merge
        // closure owns every piece of mutable memory-system state.
        let config = &self.config;
        let tile_cache = &mut self.tile_cache;
        let texture_caches = &mut self.texture_caches;
        let memory = &mut self.memory;
        let frame_index = self.frame_index;
        let tex_clock = &mut scratch.tex_clock;
        let mut state = shard::ReplayState::default();
        // Logs are compact; let producers run a few shards ahead so the
        // replay never starves without buffering the whole frame.
        let capacity = (megsim_exec::thread_count() * 2).max(4);
        megsim_exec::shard_merge(
            trace.tiles.len(),
            shard::SHARD_TILES,
            capacity,
            |range| shard::record_tiles(trace, shaders, config, frame_index, range),
            |_range, log| {
                shard::replay_shard(
                    &log,
                    trace,
                    config,
                    tile_cache,
                    texture_caches,
                    memory,
                    frame_index,
                    base,
                    busy,
                    &mut state,
                    tex_clock,
                );
            },
        );
        busy.flush += state.flush_clock;
        self.scratch = scratch;
        (
            state.tile_work_clock.max(state.flush_clock),
            state.color_accesses,
            state.depth_accesses,
        )
    }

    /// Raster Pipeline, tile by tile. Returns `(phase_cycles,
    /// color_buffer_accesses, depth_buffer_accesses)`.
    fn raster_phase(
        &mut self,
        trace: &FrameTrace,
        shaders: &ShaderTable,
        base: u64,
        busy: &mut UnitBusy,
    ) -> (u64, u64, u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut tile_work_clock = 0u64; // accumulated per-tile pipeline time
        let mut flush_clock = 0u64; // accumulated frame-buffer flush time
        let mut color_accesses = 0u64;
        let mut depth_accesses = 0u64;
        let n_fp = self.config.fragment_processors as u64;
        let immediate = trace.mode == RenderMode::Immediate;
        let deferred = trace.mode == RenderMode::TileBasedDeferred;
        let tc_latency = self.config.tile_cache.latency;
        let tc_shift = self.config.tile_cache.line_size.trailing_zeros();
        scratch.fp_clock.resize(n_fp as usize, 0);
        scratch.tex_clock.resize(n_fp as usize, 0);
        for tile in &trace.tiles {
            let tile_base = base + tile_work_clock;
            // Polygon list read-back through the Tile cache (absent in
            // immediate mode: there are no tile lists to read), as
            // same-line runs like the PLB wrote it.
            let mut list_clock = 0u64;
            let entries = if immediate {
                0
            } else {
                tile.prims.len() as u64
            };
            let mut n = 0u64;
            while n < entries {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n);
                let line = addr >> tc_shift;
                let mut m = n + 1;
                while m < entries
                    && AddressSpace::polygon_list_entry(tile.tile_index, m) >> tc_shift == line
                {
                    m += 1;
                }
                let count = m - n;
                list_clock += 1;
                let acc = self.tile_cache.access_run(addr, false, count);
                if let Some(wb) = acc.writeback {
                    self.memory.access(wb, tile_base + list_clock, true);
                }
                if acc.hit {
                    list_clock += tc_latency;
                } else {
                    let fill = self.memory.access(addr, tile_base + list_clock, false);
                    list_clock += fill.latency;
                }
                list_clock += (count - 1) * (1 + tc_latency);
                n = m;
            }
            // Rasterizer / Early-Z / Fragment Processors / Blending.
            let mut raster_clock = 0u64;
            let mut earlyz_clock = 0u64;
            scratch.fp_clock.fill(0);
            // Decoupled texture units: each FP has a texture pipe that
            // runs in parallel with its ALU; the FP finishes when the
            // slower of the two does.
            scratch.tex_clock.fill(0);
            let mut blend_clock = 0u64;
            let mut visible_px = 0u64;
            // Round-robin quad distribution: a wrapping counter in place
            // of the scalar path's `quad_count % n_fp` (same sequence,
            // no per-quad division).
            let mut fp_rr = 0usize;
            let n_fp_us = n_fp as usize;
            for prim in &tile.prims {
                let fs = shaders.fragment_shader(prim.fragment_shader);
                let fs_instr = u64::from(fs.instruction_count());
                // FP issue cost per visible-fragment count, hoisting the
                // `div_ceil` out of the quad loop (vis is 1..=4).
                let mut quad_cost = [0u64; 5];
                for (v, cost) in quad_cost.iter_mut().enumerate().skip(1) {
                    *cost = (v as u64 * fs_instr).div_ceil(self.config.fragment_issue_width);
                }
                // Memoize the prim's texture samplers once: the level
                // clamp, mip-chain walk and wrap masks are fixed per
                // (texture, filter, lod).
                scratch.samplers.clear();
                if let Some(texture) = prim.texture.as_ref() {
                    for filter in &fs.texture_samples {
                        scratch
                            .samplers
                            .push(texture.lod_sampler(*filter, prim.lod));
                    }
                }
                let texel = scratch
                    .samplers
                    .first()
                    .map(|s| s.texel_extent())
                    .unwrap_or_default();
                // The quad's four fragments sample at one-texel offsets
                // (at the selected LOD): +x, +y, then both. Same values
                // as `texel * (f % 2, f / 2)` — spelled as a per-prim
                // table so the quad loop does no integer-to-float
                // conversion.
                let offsets = [
                    Vec2::new(0.0, 0.0),
                    Vec2::new(texel.x, 0.0),
                    Vec2::new(0.0, texel.y),
                    Vec2::new(texel.x, texel.y),
                ];
                raster_clock += prim.quads.len() as u64
                    * u64::from(prim.attributes)
                    * self.config.rasterizer_cycles_per_attribute;
                for quad in &prim.quads {
                    // Early-Z: one quad per cycle; the 8-quad in-flight
                    // window hides the depth-buffer latency. A deferred
                    // (HSR) pipeline pays a second resolve pass.
                    earlyz_clock += if deferred { 2 } else { 1 };
                    depth_accesses += u64::from(quad.covered_count());
                    if immediate && prim.depth_test {
                        // IMR keeps depth in memory: one line-sized
                        // access per quad (depth values of a quad share
                        // a line), posted behind the early-z window.
                        let addr = AddressSpace::depth_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                        );
                        let acc = self.memory.access(addr, tile_base + earlyz_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        earlyz_clock =
                            earlyz_clock.max(arrival.saturating_sub(self.config.plb_write_window));
                    }
                    let vis = u64::from(quad.visible_count());
                    if vis == 0 {
                        fp_rr += 1;
                        if fp_rr == n_fp_us {
                            fp_rr = 0;
                        }
                        continue;
                    }
                    let fp = fp_rr;
                    fp_rr += 1;
                    if fp_rr == n_fp_us {
                        fp_rr = 0;
                    }
                    scratch.fp_clock[fp] += quad_cost[vis as usize];
                    self.sample_textures(
                        &offsets,
                        quad.uv,
                        vis,
                        fp,
                        base + tile_work_clock,
                        &scratch.samplers,
                        &mut scratch.tex_clock,
                    );
                    // Blending Unit: one fragment per cycle. TBR blends
                    // against the on-chip color buffer; IMR reads and
                    // writes the frame buffer in memory immediately —
                    // the off-chip traffic §II-A describes.
                    blend_clock += vis;
                    color_accesses += vis * if prim.blend.reads_destination() { 2 } else { 1 };
                    if immediate {
                        let addr = AddressSpace::framebuffer_pixel(
                            u32::from(quad.x),
                            u32::from(quad.y),
                            trace.viewport.width,
                            self.frame_index,
                        );
                        if prim.blend.reads_destination() {
                            self.memory.access(addr, tile_base + blend_clock, false);
                        }
                        let acc = self.memory.access(addr, tile_base + blend_clock, true);
                        let arrival = acc.ready_at.saturating_sub(tile_base);
                        blend_clock =
                            blend_clock.max(arrival.saturating_sub(self.config.flush_write_window));
                    }
                    visible_px += vis;
                }
            }
            let fp_alu_max = scratch.fp_clock.iter().copied().max().unwrap_or(0);
            let tex_max = scratch.tex_clock.iter().copied().max().unwrap_or(0);
            let fp_max = scratch
                .fp_clock
                .iter()
                .zip(&scratch.tex_clock)
                .map(|(&alu, &tex)| alu.max(tex))
                .max()
                .unwrap_or(0);
            busy.polygon_list_read += list_clock;
            busy.rasterizer += raster_clock;
            busy.early_z += earlyz_clock;
            busy.fragment_alu += fp_alu_max;
            busy.texture_pipe += tex_max;
            busy.blending += blend_clock;
            let tile_pipeline = list_clock
                .max(raster_clock)
                .max(earlyz_clock)
                .max(fp_max)
                .max(blend_clock);
            tile_work_clock += tile_pipeline + self.config.early_z_in_flight;

            // Tile flush: covered pixels stream to the frame buffer
            // (partial-tile flush — Arm-style transaction elimination
            // skips untouched pixels). Overlaps the next tile's work.
            // IMR wrote its colors inline, so there is nothing to flush.
            if immediate {
                continue;
            }
            let (tx, ty) = (
                tile.tile_index % trace.viewport.tiles_x(),
                tile.tile_index / trace.viewport.tiles_x(),
            );
            let rect = trace.viewport.tile_rect(tx, ty);
            let flush_bytes = visible_px * 4;
            let flush_lines = flush_bytes.div_ceil(self.config.dram.line_size);
            let row_pixels = u64::from(trace.viewport.width);
            for line in 0..flush_lines {
                // Spread the flush across the tile's pixel rows so the
                // address stream matches a real raster layout. Each
                // flush line is its own cache line (64 bytes of
                // pixels), so there is nothing to coalesce here — the
                // locality shows up as L2 hits and DRAM row hits.
                let local = line * (self.config.dram.line_size / 4);
                let y = rect.1 + (local / u64::from(trace.viewport.tile_size)) as u32;
                let x = rect.0 + (local % u64::from(trace.viewport.tile_size)) as u32;
                let addr = AddressSpace::framebuffer_pixel(
                    x.min(trace.viewport.width - 1),
                    y.min(trace.viewport.height - 1),
                    row_pixels as u32,
                    self.frame_index,
                );
                // Posted cached writes: the flush engine runs ahead of
                // memory by up to the Color queue's drain window, then
                // feels backpressure. Lines land in the L2 and reach
                // DRAM on eviction, exactly like IMR's color writes —
                // at full resolution the frame buffer far exceeds the
                // L2, so the traffic still goes off-chip.
                let w = self.memory.access(addr, base + flush_clock, true);
                let retire = w.ready_at.saturating_sub(base);
                flush_clock =
                    (flush_clock + 1).max(retire.saturating_sub(self.config.flush_write_window));
            }
        }
        busy.flush += flush_clock;
        self.scratch = scratch;
        (
            tile_work_clock.max(flush_clock),
            color_accesses,
            depth_accesses,
        )
    }

    /// Issues the texture samples of `vis` fragments of one quad and
    /// charges the (partially hidden) miss latency to FP `fp`.
    ///
    /// Address generation (through the primitive's memoized `samplers`)
    /// is fused with run servicing: addresses stream through a current
    /// same-line run that is flushed to the texture cache on every line
    /// change, so a bilinear footprint inside one 4×4 texel block is a
    /// single texture-cache lookup, adjacent fragments extend the run,
    /// and no per-quad address buffer is materialized.
    #[allow(clippy::too_many_arguments)]
    fn sample_textures(
        &mut self,
        offsets: &[Vec2; 4],
        uv: Vec2,
        vis: u64,
        fp: usize,
        base: u64,
        samplers: &[LodSampler],
        tex_clock: &mut [u64],
    ) {
        if samplers.is_empty() {
            return;
        }
        let line_shift = self.config.texture_cache.line_size.trailing_zeros();
        let stall_cap = self.config.texture_miss_stall_cap;
        // The FP's cache and clock are borrowed once for the whole quad
        // so the per-run servicing stays free of slice indexing.
        let cache = &mut self.texture_caches[fp];
        let memory = &mut self.memory;
        let clock = &mut tex_clock[fp];
        // Current same-line run, folded by the shared [`RunCoalescer`]:
        // the boundaries are exactly those of a scan over the quad's
        // flat address sequence (the sampler's pre-coalesced runs are
        // guaranteed same-line, so extending the open run by `count`
        // merges exactly where the flat scan would). The sharded
        // recorder uses the same machine, so both paths log/serve
        // identical runs.
        let mut runs = RunCoalescer::new(line_shift);
        for off in &offsets[..vis.min(4) as usize] {
            let fuv = Vec2::new(uv.x + off.x, uv.y + off.y);
            for sampler in samplers {
                sampler.for_each_run(fuv, line_shift, |addr, count| {
                    runs.push(addr, count, |addr, count| {
                        texture_run(cache, memory, addr, count, base, stall_cap, clock);
                    });
                });
            }
        }
        runs.flush(|addr, count| {
            texture_run(cache, memory, addr, count, base, stall_cap, clock);
        });
    }
}

/// Services one same-line run of texture samples on one FP: one texel
/// lookup per cycle of pipe occupancy; a miss stalls the pipe for a
/// capped latency (the in-flight quad window hides the rest); the run's
/// remaining `count - 1` accesses are hits at one pipe cycle each.
#[inline]
pub(crate) fn texture_run(
    cache: &mut megsim_mem::Cache,
    memory: &mut megsim_mem::MemoryHierarchy,
    addr: u64,
    count: u64,
    base: u64,
    stall_cap: u64,
    clock: &mut u64,
) {
    let acc = cache.access_run(addr, false, count);
    if let Some(wb) = acc.writeback {
        memory.access(wb, base + *clock, true);
    }
    if acc.hit {
        *clock += 1;
    } else {
        let fill = memory.access(addr, base + *clock, false);
        let arrival = fill.ready_at.saturating_sub(base);
        *clock = (*clock + 1).max(arrival.saturating_sub(stall_cap));
    }
    *clock += count - 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_funcsim::{RenderConfig, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 16));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            12,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn quad_mesh(scale: f32) -> Arc<Mesh> {
        Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-scale, -scale, 0.0)),
                Vertex::at(Vec3::new(scale, -scale, 0.0)),
                Vertex::at(Vec3::new(scale, scale, 0.0)),
                Vertex::at(Vec3::new(-scale, scale, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0x4000,
        ))
    }

    fn frame(scale: f32, textured: bool) -> Frame {
        let mut f = Frame::new();
        f.draws.push(DrawCall {
            mesh: quad_mesh(scale),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: textured.then(|| TextureDesc::new(0, 256, 256, 4, 0x1000_0000)),
            blend: BlendMode::Opaque,
            depth_test: true,
        });
        f
    }

    fn trace_of(frame: &Frame, viewport: Viewport) -> FrameTrace {
        Renderer::new(RenderConfig::tbr(viewport)).render_frame(frame, &shaders())
    }

    #[test]
    fn simulated_frame_has_positive_cycles_and_traffic() {
        let cfg = GpuConfig::small(256, 256);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.simulate_frame(&trace_of(&frame(0.5, true), viewport), &shaders());
        assert!(stats.cycles > 0);
        assert!(stats.geometry_cycles > 0);
        assert!(stats.raster_cycles > 0);
        assert!(stats.instructions > 0);
        assert!(stats.dram_accesses() > 0);
        assert!(stats.l2_accesses() > 0);
        assert!(stats.tile_cache_accesses() > 0);
        assert!(stats.texture_cache.accesses() > 0);
        assert!(stats.vertex_cache.accesses() > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn bigger_frames_take_more_cycles() {
        let cfg = GpuConfig::small(256, 256);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let small = gpu.simulate_frame(&trace_of(&frame(0.2, true), viewport), &shaders());
        let big = gpu.simulate_frame(&trace_of(&frame(0.9, true), viewport), &shaders());
        assert!(big.cycles > small.cycles);
        assert!(big.tile_cache_accesses() >= small.tile_cache_accesses());
    }

    #[test]
    fn warm_caches_reduce_second_frame_traffic() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&frame(0.5, true), viewport);
        let cold = gpu.simulate_frame(&t, &shaders());
        let warm = gpu.simulate_frame(&t, &shaders());
        assert!(warm.dram_accesses() <= cold.dram_accesses());
        assert!(warm.cycles <= cold.cycles);
    }

    #[test]
    fn untextured_frame_has_no_texture_traffic() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let stats = gpu.simulate_frame(&trace_of(&frame(0.5, false), viewport), &shaders());
        assert_eq!(stats.texture_cache.accesses(), 0);
    }

    #[test]
    fn global_clock_advances_monotonically() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&frame(0.4, true), viewport);
        assert_eq!(gpu.now(), 0);
        let a = gpu.simulate_frame(&t, &shaders());
        let after_one = gpu.now();
        assert_eq!(after_one, a.cycles);
        let b = gpu.simulate_frame(&t, &shaders());
        assert_eq!(gpu.now(), after_one + b.cycles);
    }

    #[test]
    fn empty_frame_costs_only_overhead() {
        let cfg = GpuConfig::small(128, 128);
        let overhead = cfg.frame_overhead_cycles;
        let fill = u64::from(cfg.vertex_queue.entries);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        let t = trace_of(&Frame::new(), viewport);
        let stats = gpu.simulate_frame(&t, &shaders());
        assert_eq!(stats.cycles, overhead + fill);
        assert_eq!(stats.dram_accesses(), 0);
    }

    #[test]
    fn drain_l2_writes_back_dirty_lines_once() {
        let cfg = GpuConfig::small(128, 128);
        let viewport = cfg.viewport;
        let mut gpu = Gpu::new(cfg);
        gpu.simulate_frame(&trace_of(&frame(0.5, true), viewport), &shaders());
        // The flush left dirty frame-buffer lines in the L2.
        let wb = gpu.drain_l2();
        assert!(wb > 0);
        assert_eq!(gpu.drain_l2(), 0, "second drain finds a clean L2");
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use megsim_funcsim::{RenderConfig, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram};
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 12));
        t.add(ShaderProgram::fragment(0, "fs", 10, vec![]));
        t
    }

    /// Two overlapping opaque layers drawn back-to-front — the worst
    /// case for TBR overdraw and IMR memory traffic.
    fn overdraw_frame() -> Frame {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.6, -0.6, 0.0)),
                Vertex::at(Vec3::new(0.6, -0.6, 0.0)),
                Vertex::at(Vec3::new(0.6, 0.6, 0.0)),
                Vertex::at(Vec3::new(-0.6, 0.6, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0x100,
        ));
        let mut f = Frame::new();
        for z in [0.4f32, -0.2] {
            f.draws.push(DrawCall {
                mesh: Arc::clone(&mesh),
                transform: Mat4::translation(Vec3::new(0.0, 0.0, z)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(0),
                texture: None,
                blend: BlendMode::Opaque,
                depth_test: true,
            });
        }
        f
    }

    fn run(mode: RenderMode) -> FrameStats {
        // Full-resolution target: the frame buffer (≈4 MB) far exceeds
        // the 256 KiB L2, as on real hardware, so IMR's per-fragment
        // color/depth traffic actually reaches DRAM.
        let mut cfg = GpuConfig::mali450_like();
        cfg.render_mode = mode;
        let viewport = cfg.viewport;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut gpu = Gpu::new(cfg);
        let trace = renderer.render_frame(&overdraw_frame(), &shaders());
        gpu.simulate_frame(&trace, &shaders())
    }

    #[test]
    fn imr_generates_more_dram_traffic_than_tbr() {
        let tbr = run(RenderMode::TileBased);
        let imr = run(RenderMode::Immediate);
        // The §II-A claim: TBR avoids the per-fragment off-chip color
        // traffic; IMR writes every shaded fragment (including the
        // overdrawn layer) to memory.
        assert!(
            imr.dram_accesses() > tbr.dram_accesses(),
            "imr {} vs tbr {}",
            imr.dram_accesses(),
            tbr.dram_accesses()
        );
        assert_eq!(imr.tile_cache_accesses(), 0, "IMR has no tiling engine");
        assert!(tbr.tile_cache_accesses() > 0);
    }

    #[test]
    fn tbdr_shades_fewer_fragments_than_tbr_under_overdraw() {
        let tbr = run(RenderMode::TileBased);
        let tbdr = run(RenderMode::TileBasedDeferred);
        assert!(
            tbdr.activity.fragments_shaded < tbr.activity.fragments_shaded,
            "tbdr {} vs tbr {}",
            tbdr.activity.fragments_shaded,
            tbr.activity.fragments_shaded
        );
        assert!(tbdr.activity.fragments_hsr_culled > 0);
        assert!(tbdr.instructions < tbr.instructions);
    }

    #[test]
    fn all_modes_produce_consistent_clock_accounting() {
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let stats = run(mode);
            assert!(stats.cycles >= stats.geometry_cycles + stats.raster_cycles);
            assert!(stats.cycles > 0, "{mode:?}");
        }
    }
}
