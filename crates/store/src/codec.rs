//! Byte codec for the two record types the frame cache persists:
//! [`FrameActivity`] (characterization results) and [`FrameStats`]
//! (timing results, which embed an activity block).
//!
//! Every counter in both types is a `u64`, so the encoding is a flat
//! little-endian field dump behind a one-byte record kind and a format
//! version — trivially bit-exact across processes and platforms.
//! Decoding is *total*: any malformed input (wrong kind, unknown
//! version, truncation, trailing bytes, absurd vector lengths) returns
//! `None`, which the cache tier treats as a plain miss.

use std::sync::Arc;

use megsim_funcsim::FrameActivity;
use megsim_mem::{CacheStats, DramStats, MemoryStats};
use megsim_timing::{FrameStats, UnitBusy};

/// Version of the record encoding. Bump on any layout change; old
/// records then decode as misses and get re-simulated once.
pub const CODEC_VERSION: u16 = 1;

/// Record kind tag for [`FrameActivity`] payloads.
const KIND_ACTIVITY: u8 = 1;
/// Record kind tag for [`FrameStats`] payloads.
const KIND_STATS: u8 = 2;

/// Cap on the per-shader vector lengths a decoder will allocate.
const MAX_SHADERS: u32 = 1 << 20;

/// Little-endian field writer.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(512);
        buf.push(kind);
        buf.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        Self { buf }
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian field reader over a borrowed payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn open(buf: &'a [u8], kind: u8) -> Option<Self> {
        let mut r = Self { buf, pos: 0 };
        if r.u8()? != kind || r.u16()? != CODEC_VERSION {
            return None;
        }
        Some(r)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Decoding must consume the payload exactly.
    fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

fn write_activity_body(w: &mut Writer, a: &FrameActivity) {
    w.u32(a.vertex_shader_invocations.len() as u32);
    for &v in &a.vertex_shader_invocations {
        w.u64(v);
    }
    w.u32(a.fragment_shader_invocations.len() as u32);
    for &v in &a.fragment_shader_invocations {
        w.u64(v);
    }
    for v in [
        a.vertices_fetched,
        a.vertices_shaded,
        a.primitives_assembled,
        a.primitives_clipped,
        a.primitives_culled_backface,
        a.primitives_culled_degenerate,
        a.primitives_emitted,
        a.tile_bin_entries,
        a.tiles_touched,
        a.quads_rasterized,
        a.fragments_rasterized,
        a.fragments_early_z_culled,
        a.fragments_hsr_culled,
        a.fragments_shaded,
        a.blend_ops,
        a.vertex_instructions,
        a.fragment_instructions,
    ] {
        w.u64(v);
    }
    for v in a.texture_samples {
        w.u64(v);
    }
}

fn read_shader_vec(r: &mut Reader) -> Option<Vec<u64>> {
    let len = r.u32()?;
    if len > MAX_SHADERS {
        return None;
    }
    let mut v = Vec::with_capacity(len as usize);
    for _ in 0..len {
        v.push(r.u64()?);
    }
    Some(v)
}

fn read_activity_body(r: &mut Reader) -> Option<FrameActivity> {
    let mut a = FrameActivity {
        vertex_shader_invocations: read_shader_vec(r)?,
        fragment_shader_invocations: read_shader_vec(r)?,
        ..FrameActivity::default()
    };
    a.vertices_fetched = r.u64()?;
    a.vertices_shaded = r.u64()?;
    a.primitives_assembled = r.u64()?;
    a.primitives_clipped = r.u64()?;
    a.primitives_culled_backface = r.u64()?;
    a.primitives_culled_degenerate = r.u64()?;
    a.primitives_emitted = r.u64()?;
    a.tile_bin_entries = r.u64()?;
    a.tiles_touched = r.u64()?;
    a.quads_rasterized = r.u64()?;
    a.fragments_rasterized = r.u64()?;
    a.fragments_early_z_culled = r.u64()?;
    a.fragments_hsr_culled = r.u64()?;
    a.fragments_shaded = r.u64()?;
    a.blend_ops = r.u64()?;
    a.vertex_instructions = r.u64()?;
    a.fragment_instructions = r.u64()?;
    for slot in &mut a.texture_samples {
        *slot = r.u64()?;
    }
    Some(a)
}

fn write_cache_stats(w: &mut Writer, c: &CacheStats) {
    for v in [c.reads, c.writes, c.hits, c.misses, c.writebacks] {
        w.u64(v);
    }
}

fn read_cache_stats(r: &mut Reader) -> Option<CacheStats> {
    Some(CacheStats {
        reads: r.u64()?,
        writes: r.u64()?,
        hits: r.u64()?,
        misses: r.u64()?,
        writebacks: r.u64()?,
    })
}

fn write_dram_stats(w: &mut Writer, d: &DramStats) {
    for v in [
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
    ] {
        w.u64(v);
    }
}

fn read_dram_stats(r: &mut Reader) -> Option<DramStats> {
    Some(DramStats {
        reads: r.u64()?,
        writes: r.u64()?,
        row_hits: r.u64()?,
        row_misses: r.u64()?,
        bus_busy_cycles: r.u64()?,
    })
}

fn write_unit_busy(w: &mut Writer, u: &UnitBusy) {
    for v in [
        u.vertex_fetch,
        u.vertex_alu,
        u.prim_assembly,
        u.polygon_list_write,
        u.polygon_list_read,
        u.rasterizer,
        u.early_z,
        u.fragment_alu,
        u.texture_pipe,
        u.blending,
        u.flush,
    ] {
        w.u64(v);
    }
}

fn read_unit_busy(r: &mut Reader) -> Option<UnitBusy> {
    Some(UnitBusy {
        vertex_fetch: r.u64()?,
        vertex_alu: r.u64()?,
        prim_assembly: r.u64()?,
        polygon_list_write: r.u64()?,
        polygon_list_read: r.u64()?,
        rasterizer: r.u64()?,
        early_z: r.u64()?,
        fragment_alu: r.u64()?,
        texture_pipe: r.u64()?,
        blending: r.u64()?,
        flush: r.u64()?,
    })
}

/// Encodes a characterization record.
pub fn encode_activity(a: &FrameActivity) -> Vec<u8> {
    let mut w = Writer::new(KIND_ACTIVITY);
    write_activity_body(&mut w, a);
    w.buf
}

/// Decodes a characterization record; `None` means "treat as a miss".
pub fn decode_activity(bytes: &[u8]) -> Option<FrameActivity> {
    let mut r = Reader::open(bytes, KIND_ACTIVITY)?;
    let a = read_activity_body(&mut r)?;
    r.finish()?;
    Some(a)
}

/// Encodes a timing record (activity block embedded).
pub fn encode_stats(s: &FrameStats) -> Vec<u8> {
    let mut w = Writer::new(KIND_STATS);
    for v in [s.cycles, s.geometry_cycles, s.raster_cycles, s.instructions] {
        w.u64(v);
    }
    write_cache_stats(&mut w, &s.vertex_cache);
    write_cache_stats(&mut w, &s.texture_cache);
    write_cache_stats(&mut w, &s.tile_cache);
    write_cache_stats(&mut w, &s.memory.l2);
    write_dram_stats(&mut w, &s.memory.dram);
    w.u64(s.color_buffer_accesses);
    w.u64(s.depth_buffer_accesses);
    write_unit_busy(&mut w, &s.unit_busy);
    write_activity_body(&mut w, &s.activity);
    w.buf
}

/// Decodes a timing record; `None` means "treat as a miss".
pub fn decode_stats(bytes: &[u8]) -> Option<FrameStats> {
    let mut r = Reader::open(bytes, KIND_STATS)?;
    let mut s = FrameStats {
        cycles: r.u64()?,
        geometry_cycles: r.u64()?,
        raster_cycles: r.u64()?,
        instructions: r.u64()?,
        ..FrameStats::default()
    };
    s.vertex_cache = read_cache_stats(&mut r)?;
    s.texture_cache = read_cache_stats(&mut r)?;
    s.tile_cache = read_cache_stats(&mut r)?;
    s.memory = MemoryStats {
        l2: read_cache_stats(&mut r)?,
        dram: read_dram_stats(&mut r)?,
    };
    s.color_buffer_accesses = r.u64()?;
    s.depth_buffer_accesses = r.u64()?;
    s.unit_busy = read_unit_busy(&mut r)?;
    s.activity = Arc::new(read_activity_body(&mut r)?);
    r.finish()?;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn busy_activity() -> FrameActivity {
        FrameActivity {
            vertex_shader_invocations: vec![3, 0, u64::MAX],
            fragment_shader_invocations: vec![7; 5],
            vertices_fetched: 11,
            vertices_shaded: 12,
            primitives_assembled: 13,
            primitives_clipped: 14,
            primitives_culled_backface: 15,
            primitives_culled_degenerate: 16,
            primitives_emitted: 17,
            tile_bin_entries: 18,
            tiles_touched: 19,
            quads_rasterized: 20,
            fragments_rasterized: 21,
            fragments_early_z_culled: 22,
            fragments_hsr_culled: 23,
            fragments_shaded: 24,
            texture_samples: [25, 26, 27, 28],
            blend_ops: 29,
            vertex_instructions: 30,
            fragment_instructions: 31,
        }
    }

    fn busy_stats() -> FrameStats {
        let mut s = FrameStats {
            cycles: 1,
            geometry_cycles: 2,
            raster_cycles: 3,
            instructions: 4,
            color_buffer_accesses: 5,
            depth_buffer_accesses: 6,
            activity: Arc::new(busy_activity()),
            ..FrameStats::default()
        };
        s.vertex_cache.reads = 41;
        s.texture_cache.writes = 42;
        s.tile_cache.hits = 43;
        s.memory.l2.misses = 44;
        s.memory.dram.row_hits = 45;
        s.unit_busy.fragment_alu = 46;
        s.unit_busy.flush = 47;
        s
    }

    #[test]
    fn activity_round_trips_bit_exactly() {
        let a = busy_activity();
        assert_eq!(decode_activity(&encode_activity(&a)), Some(a));
        let empty = FrameActivity::default();
        assert_eq!(decode_activity(&encode_activity(&empty)), Some(empty));
    }

    #[test]
    fn stats_round_trip_bit_exactly() {
        let s = busy_stats();
        assert_eq!(decode_stats(&encode_stats(&s)), Some(s));
        let d = FrameStats::default();
        assert_eq!(decode_stats(&encode_stats(&d)), Some(d));
    }

    #[test]
    fn kinds_are_disjoint() {
        assert!(decode_stats(&encode_activity(&busy_activity())).is_none());
        assert!(decode_activity(&encode_stats(&busy_stats())).is_none());
    }

    #[test]
    fn truncations_and_trailing_bytes_are_misses() {
        let bytes = encode_stats(&busy_stats());
        for cut in 0..bytes.len() {
            assert!(decode_stats(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_stats(&longer).is_none());
    }

    #[test]
    fn unknown_version_is_a_miss() {
        let mut bytes = encode_activity(&busy_activity());
        bytes[1] = 0xFF;
        assert!(decode_activity(&bytes).is_none());
    }

    #[test]
    fn absurd_vector_length_is_a_miss() {
        let mut w = Writer::new(KIND_ACTIVITY);
        w.u32(MAX_SHADERS + 1);
        assert!(decode_activity(&w.buf).is_none());
    }

    proptest! {
        /// Any byte flip either fails to decode or decodes to different
        /// content — silent aliasing of damaged records back to the
        /// original would defeat the CRC layer's purpose. (The CRC
        /// normally rejects damage before the codec ever runs; this
        /// pins the codec's own honesty.)
        #[test]
        fn decoding_is_the_inverse_of_encoding(
            cycles in any::<u64>(),
            instructions in any::<u64>(),
            vs in proptest::collection::vec(any::<u64>(), 0..8),
            fs in proptest::collection::vec(any::<u64>(), 0..8),
        ) {
            let mut s = busy_stats();
            s.cycles = cycles;
            s.instructions = instructions;
            s.activity = Arc::new(FrameActivity {
                vertex_shader_invocations: vs,
                fragment_shader_invocations: fs,
                ..busy_activity()
            });
            prop_assert_eq!(decode_stats(&encode_stats(&s)), Some(s));
        }
    }
}
