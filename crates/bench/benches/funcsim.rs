//! Functional-simulator benchmarks: per-frame characterization cost
//! across the three rendering architectures, and whole-sequence
//! characterization fanned out on the `megsim-exec` worker pool across
//! a thread sweep (the cost MEGsim pays on *every* frame, so its
//! throughput bounds the end-to-end speedup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
use megsim_gfx::draw::Viewport;
use megsim_workloads::by_alias;

fn bench_render_modes(c: &mut Criterion) {
    let workload = by_alias("bbr1", 0.02, 7).expect("known alias");
    let shaders = workload.shaders();
    let frame = workload.frame(workload.frames() / 2);

    let mut group = c.benchmark_group("funcsim_frame_activity_modes");
    for (name, mode) in [
        ("tbr", RenderMode::TileBased),
        ("tbdr", RenderMode::TileBasedDeferred),
        ("imr", RenderMode::Immediate),
    ] {
        let renderer = Renderer::new(RenderConfig {
            viewport: Viewport::MALI450_BASELINE,
            mode,
        });
        group.bench_function(name, |b| {
            b.iter(|| renderer.frame_activity(&frame, shaders));
        });
    }
    group.finish();
}

fn bench_sequence_characterization(c: &mut Criterion) {
    let workload = by_alias("jjo", 0.05, 7).expect("known alias");
    let shaders = workload.shaders();
    let renderer = Renderer::new(RenderConfig::default());
    let frames: Vec<_> = workload.iter_frames().collect();

    let max = std::thread::available_parallelism().map_or(1, usize::from);
    let mut sweep = vec![1];
    if max >= 2 {
        sweep.push(2);
    }
    if max > 2 {
        sweep.push(max);
    }

    let mut group = c.benchmark_group("funcsim_sequence_characterization_jjo");
    group.sample_size(10);
    for threads in sweep {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| {
                    megsim_exec::par_map_indexed(&frames, |_, f| {
                        renderer.frame_activity(f, shaders)
                    })
                });
            },
        );
    }
    group.finish();
    megsim_exec::set_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_render_modes, bench_sequence_characterization
}
criterion_main!(benches);
