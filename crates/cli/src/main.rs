//! The `megsim` command-line tool.
//!
//! A TEAPOT-style trace workflow over the MEGsim stack:
//!
//! ```text
//! megsim record --benchmark bbr1 --scale 0.1 --out bbr1.mglt
//! megsim info bbr1.mglt
//! megsim characterize bbr1.mglt --out features.csv
//! megsim select bbr1.mglt --out plan.csv
//! megsim estimate bbr1.mglt [--ground-truth]
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("megsim: {msg}");
            ExitCode::from(2)
        }
    }
}
