//! The MEGsim selection pipeline: characteristic vectors → normalization
//! → k-means/BIC search → cluster representatives (paper §III).

use serde::{Deserialize, Serialize};

use megsim_cluster::{search_clusters, SearchConfig};

use crate::features::{CharacterizationConfig, FeatureMatrix};
use crate::normalize::{normalize, GroupWeights};

/// Full configuration of the MEGsim methodology.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MegsimConfig {
    /// Characterization options (§III-B).
    pub characterization: CharacterizationConfig,
    /// Group weights (§III-C).
    pub weights: GroupWeights,
    /// Cluster-search options (§III-E/F).
    pub search: SearchConfig,
}

impl MegsimConfig {
    /// The paper's exact configuration: T = 0.85 and the strict
    /// "stop at the first BIC decrease" rule of §III-F.
    pub fn paper() -> Self {
        let mut cfg = Self::default();
        cfg.search = cfg.search.with_patience(1);
        cfg
    }

    /// Sets the k-means/BIC seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.search.seed = seed;
        self
    }
}

/// One selected representative frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Representative {
    /// Frame index within the sequence.
    pub frame_index: usize,
    /// Number of frames in the representative's cluster — the scaling
    /// factor applied to its simulated statistics.
    pub cluster_size: usize,
}

/// Output of the selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// One representative per cluster, in cluster order.
    pub representatives: Vec<Representative>,
    /// Cluster label of every frame.
    pub labels: Vec<usize>,
    /// BIC score of every evaluated `k` (diagnostics / Fig. 6 dumps).
    pub bic_scores: Vec<f64>,
}

impl Selection {
    /// Number of clusters (= frames MEGsim will simulate).
    pub fn k(&self) -> usize {
        self.representatives.len()
    }

    /// The paper's Table III "reduction factor": total frames divided by
    /// simulated frames.
    pub fn reduction_factor(&self) -> f64 {
        self.labels.len() as f64 / self.k() as f64
    }
}

/// Runs normalization + clustering + representative selection on a raw
/// feature matrix.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn select_representatives(matrix: &FeatureMatrix, config: &MegsimConfig) -> Selection {
    assert!(matrix.frames() > 0, "cannot select from zero frames");
    let data = normalize(matrix, &config.weights);
    let found = search_clusters(&data, &config.search);
    let reps = found.clustering.representatives(&data);
    let sizes = found.clustering.cluster_sizes();
    let representatives = reps
        .into_iter()
        .zip(sizes)
        .map(|(frame_index, cluster_size)| Representative {
            frame_index,
            cluster_size,
        })
        .collect();
    Selection {
        representatives,
        labels: found.clustering.labels,
        bic_scores: found.bic_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-phase feature matrix: 30 "menu" frames and 30
    /// "gameplay" frames with very different shader activity.
    fn two_phase_matrix() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..60 {
            let jitter = (i as f64 * 0.7).sin() * 5.0;
            if i % 2 == 0 {
                rows.push(vec![100.0 + jitter, 0.0, 500.0 + jitter, 0.0, 50.0]);
            } else {
                rows.push(vec![0.0, 900.0 + jitter, 0.0, 4000.0 + jitter, 300.0]);
            }
        }
        FeatureMatrix::from_rows(rows, 2, 2)
    }

    #[test]
    fn separates_the_two_phases() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        // T = 0.85 may refine each phase into sub-clusters, but no
        // cluster may mix the two phases (they are far apart).
        assert!(sel.k() >= 2 && sel.k() <= 8, "k = {} bic = {:?}", sel.k(), sel.bic_scores);
        assert_eq!(sel.labels.len(), 60);
        let sizes: Vec<usize> = sel.representatives.iter().map(|r| r.cluster_size).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        for c in 0..sel.k() {
            let members: Vec<usize> = (0..60).filter(|&i| sel.labels[i] == c).collect();
            assert!(
                members.iter().all(|m| m % 2 == members[0] % 2),
                "cluster {c} mixes phases: {members:?}"
            );
        }
    }

    #[test]
    fn representatives_belong_to_their_clusters() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        for (c, rep) in sel.representatives.iter().enumerate() {
            assert_eq!(sel.labels[rep.frame_index], c);
        }
    }

    #[test]
    fn reduction_factor_is_n_over_k() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        let expected = 60.0 / sel.k() as f64;
        assert!((sel.reduction_factor() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = two_phase_matrix();
        let a = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        let b = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        assert_eq!(a, b);
    }
}
