//! Offline vendored mini benchmark harness.
//!
//! Implements the slice of the Criterion 0.5 API the workspace's
//! `benches/` use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of plain `std::time::Instant`
//! measurements. There are no statistical regressions reports or HTML
//! output; each benchmark prints its mean, min, and max sample time.
//! `cargo bench` filters by substring like the real harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARM_UP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(30);

/// Top-level harness handle; collects settings and runs benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `--bench <filter>`: keep only
        // benchmarks whose id contains the filter substring.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--profile-time" => {
                    // consume the flag (and value for --profile-time)
                    if arg == "--profile-time" {
                        let _ = args.next();
                    }
                }
                _ if arg.starts_with('-') => {}
                _ => filter = Some(arg),
            }
        }
        Criterion {
            sample_size: 50,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&id, samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&id, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures a routine: warms up, then times `sample_size` samples
    /// of a batch size calibrated to the warm-up throughput.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the budget elapses, tracking throughput.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter) as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, in either the list form or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
