//! A small dense matrix with the inversion needed by the coefficient of
//! multiple correlation (paper Eq. 2–3).

use std::fmt;

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned when a matrix operation is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Inversion of a singular (or numerically singular) matrix.
    Singular,
    /// Operand shapes are incompatible.
    ShapeMismatch,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::ShapeMismatch => write!(f, "matrix shapes are incompatible"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if v.len() != self.cols {
            return Err(MatrixError::ShapeMismatch);
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Inverse by Gauss-Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] for non-square matrices and
    /// [`MatrixError::Singular`] when a pivot underflows.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .abs()
                        .partial_cmp(&a[(r2, col)].abs())
                        .expect("NaN during inversion")
                })
                .expect("non-empty range");
            let pivot = a[(pivot_row, col)];
            if pivot.abs() < 1e-12 {
                return Err(MatrixError::Singular);
            }
            a.swap_rows(col, pivot_row);
            inv.swap_rows(col, pivot_row);
            let inv_pivot = 1.0 / pivot;
            for j in 0..n {
                a[(col, j)] *= inv_pivot;
                inv[(col, j)] *= inv_pivot;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a[(row, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(row, j)] -= factor * a[(col, j)];
                    inv[(row, j)] -= factor * inv[(col, j)];
                }
            }
        }
        Ok(inv)
    }

    /// Adds `lambda` to the diagonal (ridge regularization used when the
    /// shader-count correlation matrix is near-singular).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn mul_known_product() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert_eq!(a.mul(&b), Err(MatrixError::ShapeMismatch));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Matrix::from_rows(3, 3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]);
        let inv = m.inverse().unwrap();
        let prod = m.mul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.inverse(), Err(MatrixError::Singular));
    }

    #[test]
    fn ridge_makes_singular_invertible() {
        let mut m = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        m.add_ridge(1e-3);
        assert!(m.inverse().is_ok());
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = m.inverse().unwrap();
        assert_eq!(inv, Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
    }
}
