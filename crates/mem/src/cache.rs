//! Set-associative write-back cache model with LRU replacement.
//!
//! Models the caches of Table I (vertex cache, texture caches, tile
//! cache, L2): 64-byte lines, 2-way associativity, configurable size,
//! banks and access latency. The model is *functional + counting*: it
//! tracks hit/miss/writeback behaviour exactly, while latency is consumed
//! by the timing crate.

use serde::{Deserialize, Serialize};

/// Static configuration of one cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable name used in stats dumps (e.g. `"L2"`).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (Table I: 64).
    pub line_size: u64,
    /// Associativity (Table I: 2-way).
    pub ways: u32,
    /// Number of banks (affects throughput in the timing model).
    pub banks: u32,
    /// Hit latency in GPU cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is
    /// inconsistent (capacity not divisible by `line_size * ways`).
    pub fn new(
        name: impl Into<String>,
        size_bytes: u64,
        line_size: u64,
        ways: u32,
        banks: u32,
        latency: u64,
    ) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0 && banks > 0, "ways and banks must be non-zero");
        assert_eq!(
            size_bytes % (line_size * u64::from(ways)),
            0,
            "capacity must be divisible by line_size * ways"
        );
        let sets = size_bytes / (line_size * u64::from(ways));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            name: name.into(),
            size_bytes,
            line_size,
            ways,
            banks,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_size * u64::from(self.ways))
    }
}

/// Hit/miss and traffic counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Hits (reads + writes).
    pub hits: u64,
    /// Misses (reads + writes).
    pub misses: u64,
    /// Dirty lines written back on eviction or flush.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss ratio in `[0, 1]`; zero when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another stats block (used when merging frames).
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic counter value of the last touch (for LRU).
    last_use: u64,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative write-back, write-allocate cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds a cold cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let lines = vec![Line::default(); (sets * u64::from(config.ways)) as usize];
        let line_shift = config.line_size.trailing_zeros();
        Self {
            set_mask: sets - 1,
            line_shift,
            lines,
            tick: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters but keeps cache contents (used between frames to
    /// attribute traffic per frame while modelling warm caches).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Bank servicing `addr` (line-interleaved).
    pub fn bank_of(&self, addr: u64) -> u32 {
        ((addr >> self.line_shift) % u64::from(self.config.banks)) as u32
    }

    /// Accesses `addr`; returns hit/miss and any writeback generated.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.config.ways as usize;
        let base = set * ways;
        // Hit path.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return CacheAccess {
                    hit: true,
                    writeback: None,
                };
            }
        }
        // Miss: find victim (invalid first, else LRU).
        self.stats.misses += 1;
        let mut victim = base;
        for way in 0..ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = base + way;
                break;
            }
            if line.last_use < self.lines[victim].last_use {
                victim = base + way;
            }
        }
        let evicted = self.lines[victim];
        let writeback = if evicted.valid && evicted.dirty {
            self.stats.writebacks += 1;
            let victim_line = (evicted.tag << self.set_mask.count_ones()) | set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Writes back all dirty lines and invalidates the cache, returning
    /// the number of writebacks produced (end-of-frame flush).
    pub fn flush(&mut self) -> u64 {
        let mut wb = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                wb += 1;
            }
            *line = Line::default();
        }
        self.stats.writebacks += wb;
        wb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig::new("t", 512, 64, 2, 1, 1))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new("L2", 256 * 1024, 64, 2, 8, 18);
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn config_rejects_bad_geometry() {
        let _ = CacheConfig::new("x", 100, 64, 2, 1, 1);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with line_addr % 4 == 0: 0x000, 0x100, 0x200.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 again; 0x100 is now LRU
        let miss = c.access(0x200, false);
        assert!(!miss.hit);
        assert!(c.access(0x000, false).hit, "recently used line survived");
        assert!(!c.access(0x100, false).hit, "LRU line was evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback_with_original_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let a = c.access(0x200, false); // evicts 0x000
        assert_eq!(a.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        let a = c.access(0x200, false);
        assert_eq!(a.writeback, None);
    }

    #[test]
    fn flush_writes_back_dirty_lines_and_cools_cache() {
        let mut c = tiny();
        c.access(0x00, true);
        c.access(0x40, false);
        assert_eq!(c.flush(), 1);
        assert!(!c.access(0x00, false).hit, "flush invalidates");
    }

    #[test]
    fn bank_interleaving_is_line_granular() {
        let c = Cache::new(CacheConfig::new("b", 1024, 64, 2, 4, 1));
        assert_eq!(c.bank_of(0x00), 0);
        assert_eq!(c.bank_of(0x40), 1);
        assert_eq!(c.bank_of(0x100), 0);
    }

    #[test]
    fn miss_ratio_counts() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
