//! The experiment suite: one function per table/figure of the paper's
//! evaluation, all driven by a shared per-benchmark dataset so the
//! expensive simulations run once.

use megsim_core::evaluate::{
    characterize_sequence, evaluate_megsim, simulate_representatives, simulate_sequence, MegsimRun,
};
use megsim_core::pipeline::MegsimConfig;
use megsim_core::random_sampling;
use megsim_core::{sequence_totals, FeatureMatrix, GroupWeights, SimilarityMatrix};
use megsim_power::{EnergyModel, PowerBreakdown};
use megsim_stats::{multiple_correlation, pearson, quantile};
use megsim_timing::{FrameStats, GpuConfig};
use megsim_workloads::{build, BenchmarkInfo, Workload, BENCHMARKS};

use crate::args::ExperimentArgs;
use crate::format::{millions, pct, times, TextTable};

/// Everything the experiments need about one benchmark: the workload,
/// its feature matrix and the full-sequence ground-truth simulation.
#[derive(Debug)]
pub struct BenchmarkData {
    /// Table II row.
    pub info: BenchmarkInfo,
    /// The synthetic game.
    pub workload: Workload,
    /// Raw `N × D` characteristic vectors.
    pub matrix: FeatureMatrix,
    /// Ground-truth per-frame statistics (full cycle simulation).
    pub per_frame: Vec<FrameStats>,
    /// Ground-truth sequence totals.
    pub totals: FrameStats,
}

impl BenchmarkData {
    /// Per-frame cycle counts (used by the correlation study and the
    /// random sub-sampling baseline).
    pub fn cycles_series(&self) -> Vec<f64> {
        self.per_frame.iter().map(|f| f.cycles as f64).collect()
    }
}

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct Context {
    /// Command-line options.
    pub args: ExperimentArgs,
    /// The simulated machine (Table I).
    pub gpu: GpuConfig,
    /// The MEGsim configuration (§III defaults).
    pub megsim: MegsimConfig,
}

impl Context {
    /// Builds a context from parsed arguments and applies the
    /// `--threads` choice to the worker pool (0 keeps the
    /// `MEGSIM_THREADS` / hardware default).
    pub fn new(args: ExperimentArgs) -> Self {
        megsim_exec::set_threads(args.threads);
        let megsim = MegsimConfig::default().with_seed(args.seed);
        Self {
            args,
            gpu: GpuConfig::mali450_like(),
            megsim,
        }
    }
}

/// Simulates one benchmark end-to-end (characterization + ground truth).
pub fn compute_benchmark(ctx: &Context, info: &BenchmarkInfo) -> BenchmarkData {
    let workload = build(info, ctx.args.scale, ctx.args.seed);
    eprintln!(
        "[{}] {} frames: functional characterization...",
        info.alias,
        workload.frames()
    );
    // Frame synthesis fans out on the worker pool (`generate_frames`),
    // so the characterize/simulate passes no longer serialize behind a
    // single-threaded generator.
    let frames = workload.generate_frames();
    let matrix = characterize_sequence(
        frames.iter().cloned(),
        workload.shaders(),
        &ctx.gpu,
        &ctx.megsim,
    );
    eprintln!("[{}] cycle-accurate ground-truth simulation...", info.alias);
    let per_frame = simulate_sequence(frames.into_iter(), workload.shaders(), &ctx.gpu);
    let totals = sequence_totals(&per_frame);
    BenchmarkData {
        info: *info,
        workload,
        matrix,
        per_frame,
        totals,
    }
}

/// Simulates every selected benchmark.
///
/// Benchmarks run one after another on purpose: each one's frame-level
/// fan-out already saturates the worker pool with uniformly sized work
/// items, which balances better than one coarse task per benchmark
/// (the nested-parallelism guard would serialize the inner frame loops
/// anyway).
pub fn compute_suite(ctx: &Context) -> Vec<BenchmarkData> {
    BENCHMARKS
        .iter()
        .filter(|info| ctx.args.selects(info.alias))
        .map(|info| compute_benchmark(ctx, info))
        .collect()
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Renders the Table I machine description.
pub fn table1(ctx: &Context) -> String {
    let g = &ctx.gpu;
    let mut t = TextTable::new(&["parameter", "value"]);
    let mut kv = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    kv("Frequency", format!("{} MHz", g.frequency_mhz));
    kv("Voltage", format!("{} V", g.voltage));
    kv("Technology node", format!("{} nm", g.technology_nm));
    kv(
        "Screen resolution",
        format!("{}x{}", g.viewport.width, g.viewport.height),
    );
    kv("Tile size", format!("{0}x{0} pixels", g.viewport.tile_size));
    kv(
        "Main memory",
        format!(
            "{} banks, {} B lines, {}-{} cycles, {} B/cycle",
            g.dram.banks,
            g.dram.line_size,
            g.dram.row_hit_latency,
            g.dram.row_miss_latency,
            g.dram.bytes_per_cycle
        ),
    );
    kv(
        "Vertex queue",
        format!(
            "{} entries, {} B",
            g.vertex_queue.entries, g.vertex_queue.entry_bytes
        ),
    );
    kv(
        "Triangle & tile queue",
        format!(
            "{} entries, {} B",
            g.triangle_queue.entries, g.triangle_queue.entry_bytes
        ),
    );
    kv(
        "Fragment queue",
        format!(
            "{} entries, {} B",
            g.fragment_queue.entries, g.fragment_queue.entry_bytes
        ),
    );
    kv(
        "Color queue",
        format!(
            "{} entries, {} B",
            g.color_queue.entries, g.color_queue.entry_bytes
        ),
    );
    for c in [&g.vertex_cache, &g.texture_cache, &g.tile_cache, &g.l2] {
        kv(
            &c.name,
            format!(
                "{} KiB, {} bank(s), {} cycle(s), {}-way",
                c.size_bytes / 1024,
                c.banks,
                c.latency,
                c.ways
            ),
        );
    }
    kv("Vertex processors", format!("{}", g.vertex_processors));
    kv("Fragment processors", format!("{}", g.fragment_processors));
    kv(
        "Primitive assembly",
        format!("{} vertex/cycle", g.prim_assembly_cycles_per_vertex),
    );
    kv(
        "Rasterizer",
        format!("{} attribute/cycle", g.rasterizer_cycles_per_attribute),
    );
    kv(
        "Early Z-Test",
        format!("{} in-flight quad-fragments", g.early_z_in_flight),
    );
    format!("TABLE I: GPU simulation parameters\n{}", t.render())
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

/// Renders the Table II benchmark characterization.
pub fn table2(data: &[BenchmarkData]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "alias",
        "type",
        "downloads(M)",
        "frames",
        "VS",
        "FS",
        "cycles(M)",
        "IPC",
    ]);
    for d in data {
        t.row(vec![
            d.info.name.to_string(),
            d.info.alias.to_string(),
            d.info.game_type.to_string(),
            d.info.downloads_millions.to_string(),
            d.workload.frames().to_string(),
            d.info.vertex_shaders.to_string(),
            d.info.fragment_shaders.to_string(),
            millions(d.totals.cycles as f64),
            format!("{:.2}", d.totals.ipc()),
        ]);
    }
    format!("TABLE II: Evaluated benchmark set\n{}", t.render())
}

// ---------------------------------------------------------------------
// Fig. 3 — correlation study
// ---------------------------------------------------------------------

/// One benchmark's correlation results (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationRow {
    /// Pearson ρ between PRIM and total cycles (Eq. 1).
    pub prim: f64,
    /// Multiple correlation R of the VSCV columns vs cycles (Eq. 2).
    pub vscv: f64,
    /// Multiple correlation R of the FSCV columns vs cycles.
    pub fscv: f64,
    /// Multiple correlation R of all shader columns vs cycles.
    pub shaders: f64,
}

/// Computes the Fig. 3 correlation study for one benchmark.
pub fn correlation_row(d: &BenchmarkData) -> CorrelationRow {
    let cycles = d.cycles_series();
    let m = &d.matrix;
    let prim_col = m.column(m.vscv_len + m.fscv_len);
    let vscv_cols: Vec<Vec<f64>> = (0..m.vscv_len).map(|c| m.column(c)).collect();
    let fscv_cols: Vec<Vec<f64>> = (m.vscv_len..m.vscv_len + m.fscv_len)
        .map(|c| m.column(c))
        .collect();
    let all_cols: Vec<Vec<f64>> = vscv_cols.iter().chain(&fscv_cols).cloned().collect();
    CorrelationRow {
        prim: pearson(&prim_col, &cycles).abs(),
        vscv: multiple_correlation(&vscv_cols, &cycles),
        fscv: multiple_correlation(&fscv_cols, &cycles),
        shaders: multiple_correlation(&all_cols, &cycles),
    }
}

/// Renders Fig. 3.
pub fn fig3(data: &[BenchmarkData]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "PRIM (pearson)",
        "VSCV (R)",
        "FSCV (R)",
        "shaders (R)",
    ]);
    let mut avg = CorrelationRow {
        prim: 0.0,
        vscv: 0.0,
        fscv: 0.0,
        shaders: 0.0,
    };
    for d in data {
        let r = correlation_row(d);
        avg.prim += r.prim;
        avg.vscv += r.vscv;
        avg.fscv += r.fscv;
        avg.shaders += r.shaders;
        t.row(vec![
            d.info.alias.to_string(),
            format!("{:.3}", r.prim),
            format!("{:.3}", r.vscv),
            format!("{:.3}", r.fscv),
            format!("{:.3}", r.shaders),
        ]);
    }
    let n = data.len().max(1) as f64;
    t.row(vec![
        "average".into(),
        format!("{:.3}", avg.prim / n),
        format!("{:.3}", avg.vscv / n),
        format!("{:.3}", avg.fscv / n),
        format!("{:.3}", avg.shaders / n),
    ]);
    format!(
        "FIG 3: Correlation of input parameters with total cycles\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Fig. 4 — power split per pipeline phase
// ---------------------------------------------------------------------

/// Per-benchmark power breakdowns plus the derived §III-C weights.
pub fn power_study(data: &[BenchmarkData]) -> (Vec<PowerBreakdown>, GroupWeights) {
    let model = EnergyModel::default();
    let breakdowns: Vec<PowerBreakdown> = data
        .iter()
        .map(|d| {
            let mut total = PowerBreakdown::default();
            for f in &d.per_frame {
                total.merge(&model.breakdown(f));
            }
            total
        })
        .collect();
    let weights = model.derive_weights(breakdowns.iter());
    (
        breakdowns,
        GroupWeights {
            geometry: weights.geometry,
            raster: weights.raster,
            tiling: weights.tiling,
        },
    )
}

/// Renders Fig. 4.
pub fn fig4(data: &[BenchmarkData]) -> String {
    let (breakdowns, weights) = power_study(data);
    let mut t = TextTable::new(&["benchmark", "Geometry", "Tiling", "Raster"]);
    for (d, b) in data.iter().zip(&breakdowns) {
        let f = b.fractions();
        t.row(vec![
            d.info.alias.to_string(),
            pct(f.geometry),
            pct(f.tiling),
            pct(f.raster),
        ]);
    }
    t.row(vec![
        "average".into(),
        pct(weights.geometry),
        pct(weights.tiling),
        pct(weights.raster),
    ]);
    format!(
        "FIG 4: Fraction of dissipated power per pipeline phase\n{}\npaper weights: Geometry 10.8%  Tiling 14.7%  Raster 74.5%\n",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Fig. 5 / Fig. 6 — similarity matrix and clustering of bbr
// ---------------------------------------------------------------------

/// Builds the (normalized) similarity matrix of one benchmark.
pub fn similarity_of(d: &BenchmarkData, config: &MegsimConfig) -> SimilarityMatrix {
    let normalized = megsim_core::normalize(&d.matrix, &config.weights);
    SimilarityMatrix::from_points(&normalized)
}

/// Renders Fig. 5 (ASCII view; the PGM is written by the binary).
pub fn fig5(d: &BenchmarkData, config: &MegsimConfig, ascii_size: usize) -> String {
    let sim = similarity_of(d, config);
    format!(
        "FIG 5: Similarity matrix for {} ({} frames; darker = more similar)\n{}",
        d.info.alias,
        sim.len(),
        sim.render_ascii(ascii_size)
    )
}

/// Renders Fig. 6: the clusters found along the diagonal.
pub fn fig6(d: &BenchmarkData, config: &MegsimConfig) -> String {
    let run = evaluate_megsim(&d.matrix, &d.per_frame, config);
    let labels = &run.selection.labels;
    // Diagonal run-length encoding: consecutive frames of one cluster.
    let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (start, len, cluster)
    for (i, &label) in labels.iter().enumerate() {
        match spans.last_mut() {
            Some((_, len, c)) if *c == label => *len += 1,
            _ => spans.push((i, 1, label)),
        }
    }
    let mut out = format!(
        "FIG 6: k-means clusters for {} — k = {} (BIC over k: {:?})\n",
        d.info.alias,
        run.selection.k(),
        run.selection
            .bic_scores
            .iter()
            .map(|b| (b / 1000.0 * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    out.push_str("diagonal spans (start..end -> cluster):\n");
    for (start, len, c) in spans.iter().take(60) {
        out.push_str(&format!("  {:5}..{:<5} -> c{}\n", start, start + len, c));
    }
    if spans.len() > 60 {
        out.push_str(&format!("  ... {} more spans\n", spans.len() - 60));
    }
    out
}

// ---------------------------------------------------------------------
// Table III / Fig. 7 — reduction factor and accuracy
// ---------------------------------------------------------------------

/// Runs the MEGsim selection + estimation on every benchmark, fanning
/// out across the (up to 8) benchmarks on the worker pool.
pub fn run_all_megsim(data: &[BenchmarkData], config: &MegsimConfig) -> Vec<MegsimRun> {
    megsim_exec::par_map_indexed(data, |_, d| {
        evaluate_megsim(&d.matrix, &d.per_frame, config)
    })
}

/// Re-simulates every run's representatives standalone — the pass a
/// real MEGsim deployment executes instead of the full sequence. With
/// the content-addressed frame cache enabled these re-simulations hit
/// the statistics already computed during the ground-truth pass, so
/// the cost is near zero; the per-run estimates must match
/// [`MegsimRun::estimated`] exactly either way. Returns the number of
/// representative frames simulated.
pub fn resimulate_representatives(
    data: &[BenchmarkData],
    runs: &[MegsimRun],
    gpu: &GpuConfig,
) -> usize {
    let mut total = 0;
    for (d, run) in data.iter().zip(runs) {
        let rep_stats = simulate_representatives(
            |i| d.workload.frame(i),
            &run.selection,
            d.workload.shaders(),
            gpu,
        );
        let mut estimated = FrameStats::default();
        for (stats, rep) in rep_stats.iter().zip(&run.selection.representatives) {
            estimated.merge(&stats.scaled(rep.cluster_size as u64));
        }
        assert_eq!(
            estimated, run.estimated,
            "[{}] standalone representative re-simulation diverged",
            d.info.alias
        );
        total += rep_stats.len();
    }
    total
}

/// Renders Table III from precomputed runs.
pub fn table3(data: &[BenchmarkData], runs: &[MegsimRun]) -> String {
    let mut t = TextTable::new(&["benchmark", "actual frames", "MEGsim frames", "reduction"]);
    let mut total_frames = 0usize;
    let mut total_reps = 0usize;
    for (d, r) in data.iter().zip(runs) {
        total_frames += d.workload.frames();
        total_reps += r.frames_simulated();
        t.row(vec![
            d.info.alias.to_string(),
            d.workload.frames().to_string(),
            r.frames_simulated().to_string(),
            times(r.reduction_factor()),
        ]);
    }
    let n = data.len().max(1);
    t.row(vec![
        "average".into(),
        (total_frames / n).to_string(),
        (total_reps / n).to_string(),
        times(total_frames as f64 / total_reps.max(1) as f64),
    ]);
    format!(
        "TABLE III: Reduction factor in the number of frames\n{}",
        t.render()
    )
}

/// Renders Fig. 7 from precomputed runs.
pub fn fig7(data: &[BenchmarkData], runs: &[MegsimRun]) -> String {
    let mut t = TextTable::new(&["benchmark", "cycles", "DRAM", "L2", "Tile cache"]);
    let mut avg = [0.0f64; 4];
    for (d, r) in data.iter().zip(runs) {
        let e = r.errors;
        avg[0] += e.cycles;
        avg[1] += e.dram_accesses;
        avg[2] += e.l2_accesses;
        avg[3] += e.tile_cache_accesses;
        t.row(vec![
            d.info.alias.to_string(),
            pct(e.cycles),
            pct(e.dram_accesses),
            pct(e.l2_accesses),
            pct(e.tile_cache_accesses),
        ]);
    }
    let n = data.len().max(1) as f64;
    t.row(vec![
        "average".into(),
        pct(avg[0] / n),
        pct(avg[1] / n),
        pct(avg[2] / n),
        pct(avg[3] / n),
    ]);
    format!(
        "FIG 7: Relative error of MEGsim-estimated metrics vs full simulation\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Table IV — comparison with random sub-sampling
// ---------------------------------------------------------------------

/// One Table IV row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// MEGsim's 95 %-confidence max relative cycles error (over seeds).
    pub megsim_max_error: f64,
    /// Mean MEGsim representative count over seeds.
    pub megsim_frames: f64,
    /// Random sub-sampling frames needed to match that error.
    pub random_frames: usize,
}

/// Computes one benchmark's Table IV row: MEGsim is re-run with `seeds`
/// different k-means seedings (the paper uses 100) and random
/// sub-sampling grows until its 95 %-confidence error matches.
pub fn table4_row(
    d: &BenchmarkData,
    config: &MegsimConfig,
    seeds: usize,
    trials: usize,
) -> Table4Row {
    // Every seeding is an independent end-to-end MEGsim run; fan them
    // out on the pool (each run derives everything from its seed index).
    let runs = megsim_exec::par_map_range(seeds, |s| {
        let cfg = (*config).with_seed(config.search.seed ^ (0xABCD + s as u64));
        let run = evaluate_megsim(&d.matrix, &d.per_frame, &cfg);
        (run.errors.cycles, run.frames_simulated())
    });
    let mut errors: Vec<f64> = runs.iter().map(|&(e, _)| e).collect();
    let frames: usize = runs.iter().map(|&(_, f)| f).sum();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let megsim_max_error = quantile(&errors, 0.95).max(1e-6);
    let cycles = d.cycles_series();
    let random_frames = random_sampling::frames_needed_for_target(
        &cycles,
        megsim_max_error,
        trials,
        0.95,
        config.search.seed,
    );
    Table4Row {
        megsim_max_error,
        megsim_frames: frames as f64 / seeds as f64,
        random_frames,
    }
}

/// Renders Table IV.
pub fn table4(
    data: &[BenchmarkData],
    config: &MegsimConfig,
    seeds: usize,
    trials: usize,
) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "max rel err",
        "MEGsim frames",
        "random frames",
        "reduction",
    ]);
    let mut sum_m = 0.0;
    let mut sum_r = 0usize;
    let mut sum_e = 0.0;
    for d in data {
        eprintln!("[{}] table IV ({} seeds)...", d.info.alias, seeds);
        let row = table4_row(d, config, seeds, trials);
        sum_m += row.megsim_frames;
        sum_r += row.random_frames;
        sum_e += row.megsim_max_error;
        t.row(vec![
            d.info.alias.to_string(),
            pct(row.megsim_max_error),
            format!("{:.0}", row.megsim_frames),
            row.random_frames.to_string(),
            times(row.random_frames as f64 / row.megsim_frames.max(1.0)),
        ]);
    }
    let n = data.len().max(1) as f64;
    t.row(vec![
        "average".into(),
        pct(sum_e / n),
        format!("{:.1}", sum_m / n),
        format!("{:.1}", sum_r as f64 / n),
        times(sum_r as f64 / sum_m.max(1.0)),
    ]);
    format!(
        "TABLE IV: Frames needed by MEGsim vs random sub-sampling at equal accuracy\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Context {
        let args = ExperimentArgs {
            scale: 0.01,
            seed: 9,
            benchmarks: vec!["jjo".into()],
            ..ExperimentArgs::default()
        };
        let mut ctx = Context::new(args);
        ctx.gpu = GpuConfig::small(192, 192);
        ctx
    }

    #[test]
    fn suite_respects_filter_and_produces_consistent_data() {
        let ctx = tiny_ctx();
        let data = compute_suite(&ctx);
        assert_eq!(data.len(), 1);
        let d = &data[0];
        assert_eq!(d.matrix.frames(), d.per_frame.len());
        assert_eq!(d.matrix.frames(), d.workload.frames());
        assert!(d.totals.cycles > 0);
    }

    #[test]
    fn all_renderers_produce_output() {
        let ctx = tiny_ctx();
        let data = compute_suite(&ctx);
        assert!(table1(&ctx).contains("600 MHz"));
        assert!(table2(&data).contains("jjo"));
        assert!(fig3(&data).contains("average"));
        assert!(fig4(&data).contains("Raster"));
        assert!(fig5(&data[0], &ctx.megsim, 20).contains("Similarity"));
        assert!(fig6(&data[0], &ctx.megsim).contains("k ="));
        let runs = run_all_megsim(&data, &ctx.megsim);
        assert!(table3(&data, &runs).contains("reduction"));
        assert!(fig7(&data, &runs).contains("cycles"));
        let t4 = table4(&data, &ctx.megsim, 2, 50);
        assert!(t4.contains("random frames"));
    }

    #[test]
    fn correlation_row_is_sane() {
        let ctx = tiny_ctx();
        let data = compute_suite(&ctx);
        let r = correlation_row(&data[0]);
        for v in [r.prim, r.vscv, r.fscv, r.shaders] {
            assert!((0.0..=1.0).contains(&v), "correlation out of range: {v}");
        }
        // Shader counts must be informative about cycles.
        assert!(r.shaders > 0.5, "shaders R = {}", r.shaders);
    }
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

/// Result of one ablation variant on one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean cycles error across benchmarks.
    pub cycles_error: f64,
    /// Mean worst-metric error across benchmarks.
    pub max_error: f64,
    /// Mean cluster count across benchmarks.
    pub mean_k: f64,
}

fn ablation_eval(data: &[BenchmarkData], config: &MegsimConfig, variant: &str) -> AblationRow {
    let mut cycles_error = 0.0;
    let mut max_error = 0.0;
    let mut mean_k = 0.0;
    for d in data {
        let run = evaluate_megsim(&d.matrix, &d.per_frame, config);
        cycles_error += run.errors.cycles;
        max_error += run.errors.max();
        mean_k += run.frames_simulated() as f64;
    }
    let n = data.len().max(1) as f64;
    AblationRow {
        variant: variant.to_string(),
        cycles_error: cycles_error / n,
        max_error: max_error / n,
        mean_k: mean_k / n,
    }
}

fn ablation_table(title: &str, rows: &[AblationRow]) -> String {
    let mut t = TextTable::new(&["variant", "cycles err", "worst err", "mean k"]);
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            pct(r.cycles_error),
            pct(r.max_error),
            format!("{:.1}", r.mean_k),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Ablation: feature-group weighting schemes (§III-C). The shader-only
/// scheme drops the Tiling information the paper argues is necessary.
pub fn ablation_weights(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    let mut rows = Vec::new();
    for (weights, label) in [
        (GroupWeights::paper(), "power-derived (paper)"),
        (GroupWeights::uniform(), "uniform"),
        (GroupWeights::shader_only(), "shader-only (no PRIM)"),
    ] {
        let mut cfg = *base;
        cfg.weights = weights;
        rows.push(ablation_eval(data, &cfg, label));
    }
    ablation_table("ABLATION: feature-group weighting scheme", &rows)
}

/// Ablation: the BIC threshold `T` of §III-F (accuracy vs cluster
/// count trade-off the paper describes).
pub fn ablation_threshold(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    let mut rows = Vec::new();
    for t in [0.5, 0.7, 0.85, 0.95, 1.0] {
        let mut cfg = *base;
        cfg.search = cfg.search.with_threshold(t);
        rows.push(ablation_eval(data, &cfg, &format!("T = {t}")));
    }
    ablation_table("ABLATION: BIC threshold T (paper default 0.85)", &rows)
}

/// Ablation: texture-filter instruction weighting (§III-B).
pub fn ablation_texture_weights(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    // The matrix must be re-derived per variant, so this ablation
    // recomputes features from the stored activities.
    let mut rows = Vec::new();
    for (flag, label) in [(true, "filter-weighted (paper)"), (false, "unweighted")] {
        let mut cycles_error = 0.0;
        let mut max_error = 0.0;
        let mut mean_k = 0.0;
        for d in data {
            let cfg_feat = megsim_core::CharacterizationConfig {
                weight_texture_filters: flag,
            };
            let activities = d.per_frame.iter().map(|f| &*f.activity);
            let matrix = megsim_core::feature_matrix(activities, d.workload.shaders(), &cfg_feat);
            let run = evaluate_megsim(&matrix, &d.per_frame, base);
            cycles_error += run.errors.cycles;
            max_error += run.errors.max();
            mean_k += run.frames_simulated() as f64;
        }
        let n = data.len().max(1) as f64;
        rows.push(AblationRow {
            variant: label.to_string(),
            cycles_error: cycles_error / n,
            max_error: max_error / n,
            mean_k: mean_k / n,
        });
    }
    ablation_table("ABLATION: texture-filter instruction weighting", &rows)
}

/// Ablation: k-means initialization (k-means++ vs uniform random).
pub fn ablation_init(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    let mut rows = Vec::new();
    for (init, label) in [
        (megsim_cluster::InitMethod::KMeansPlusPlus, "k-means++"),
        (megsim_cluster::InitMethod::Random, "uniform random"),
    ] {
        let mut cfg = *base;
        cfg.search.init = init;
        rows.push(ablation_eval(data, &cfg, label));
    }
    ablation_table("ABLATION: k-means initialization", &rows)
}

/// Ablation: BIC-threshold selection (the paper) vs silhouette-based
/// selection of the cluster count.
pub fn ablation_selection_criterion(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    use megsim_core::estimate::{estimate_totals, metric_errors, sequence_totals};
    let mut rows = vec![ablation_eval(data, base, "BIC threshold (paper)")];
    // Silhouette variant: same normalization, different k selection.
    let mut cycles_error = 0.0;
    let mut max_error = 0.0;
    let mut mean_k = 0.0;
    for d in data {
        let normalized = megsim_core::normalize(&d.matrix, &base.weights);
        let max_k = base.search.max_k.min(48).min(normalized.len());
        let (clustering, _score) =
            megsim_cluster::try_best_by_silhouette(&normalized, max_k.max(2), base.search.seed)
                .expect("non-empty normalized matrix and max_k >= 2");
        let reps: Vec<megsim_core::Representative> = clustering
            .representatives(&normalized)
            .into_iter()
            .zip(clustering.cluster_sizes())
            .map(|(frame_index, cluster_size)| megsim_core::Representative {
                frame_index,
                cluster_size,
            })
            .collect();
        let estimated = estimate_totals(&reps, |i| &d.per_frame[i]);
        let errors = metric_errors(&estimated, &sequence_totals(&d.per_frame));
        cycles_error += errors.cycles;
        max_error += errors.max();
        mean_k += reps.len() as f64;
    }
    let n = data.len().max(1) as f64;
    rows.push(AblationRow {
        variant: "silhouette".to_string(),
        cycles_error: cycles_error / n,
        max_error: max_error / n,
        mean_k: mean_k / n,
    });
    ablation_table("ABLATION: cluster-count selection criterion", &rows)
}

/// Ablation: the strict §III-F stop rule (patience 1) vs the robust
/// default (patience 3).
pub fn ablation_patience(data: &[BenchmarkData], base: &MegsimConfig) -> String {
    let mut rows = Vec::new();
    for p in [1usize, 2, 3, 5] {
        let mut cfg = *base;
        cfg.search = cfg.search.with_patience(p);
        let label = if p == 1 {
            "patience 1 (paper's strict rule)".to_string()
        } else {
            format!("patience {p}")
        };
        rows.push(ablation_eval(data, &cfg, &label));
    }
    ablation_table("ABLATION: BIC search stop rule", &rows)
}

// ---------------------------------------------------------------------
// Rendering-mode study (paper §II-A background + §IV-A extension note)
// ---------------------------------------------------------------------

/// One benchmark × rendering-mode measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeRow {
    /// Fragments shaded per frame (average).
    pub fragments_shaded: f64,
    /// DRAM accesses per frame (average).
    pub dram_accesses: f64,
    /// Cycles per frame (average).
    pub cycles: f64,
}

/// Compares TBR (the paper's baseline), TBDR with Hidden Surface
/// Removal (the extension the paper names) and Immediate-Mode Rendering
/// (the §II-A strawman) on the selected benchmarks: TBR should slash
/// IMR's off-chip traffic, TBDR should slash TBR's overdraw shading.
pub fn rendering_modes(ctx: &Context, sample_frames: usize) -> String {
    use megsim_core::evaluate::simulate_sequence;
    use megsim_funcsim::RenderMode;
    let mut t = TextTable::new(&[
        "benchmark",
        "mode",
        "frags/frame",
        "DRAM/frame",
        "cycles/frame",
    ]);
    for info in BENCHMARKS.iter().filter(|i| ctx.args.selects(i.alias)) {
        let workload = build(info, ctx.args.scale, ctx.args.seed);
        let n = workload.frames().min(sample_frames.max(1));
        for (mode, label) in [
            (RenderMode::TileBased, "TBR"),
            (RenderMode::TileBasedDeferred, "TBDR+HSR"),
            (RenderMode::Immediate, "IMR"),
        ] {
            let mut gpu = ctx.gpu.clone();
            gpu.render_mode = mode;
            let stats =
                simulate_sequence((0..n).map(|i| workload.frame(i)), workload.shaders(), &gpu);
            let row = ModeRow {
                fragments_shaded: stats
                    .iter()
                    .map(|s| s.activity.fragments_shaded as f64)
                    .sum::<f64>()
                    / n as f64,
                dram_accesses: stats.iter().map(|s| s.dram_accesses() as f64).sum::<f64>()
                    / n as f64,
                cycles: stats.iter().map(|s| s.cycles as f64).sum::<f64>() / n as f64,
            };
            t.row(vec![
                info.alias.to_string(),
                label.to_string(),
                format!("{:.0}", row.fragments_shaded),
                format!("{:.0}", row.dram_accesses),
                format!("{:.0}", row.cycles),
            ]);
        }
    }
    format!(
        "RENDERING MODES: TBR vs TBDR (HSR) vs IMR ({} frames sampled per benchmark)\n{}",
        sample_frames,
        t.render()
    )
}
