//! N-instance GPU timing behind a work distributor.
//!
//! A [`MultiGpu`] rig owns N [`Gpu`] front ends (L1-class caches,
//! unit clocks, scratch), a [`megsim_mem::MemoryPool`] deciding whether
//! their L2 + DRAM back ends are shared or private
//! ([`megsim_mem::Topology`]), and one interconnect [`megsim_mem::Link`]
//! per worker GPU carrying finished pixels to the display GPU (GPU 0).
//! Work is assigned by a [`WorkDistributor`] in one of two classic
//! multi-GPU dispatch modes:
//!
//! * **Alternate-frame rendering** ([`DispatchMode::AlternateFrame`]) —
//!   frame `i` is simulated whole on GPU `i mod N`. A frame rendered
//!   away from the display GPU pays a full-framebuffer scan-out
//!   transfer over its link; per-frame `cycles` report the frame's
//!   latency on its own GPU (including the transfer), so sequence
//!   totals remain the paper's summed-cycles metric.
//! * **Split-frame rendering** ([`DispatchMode::SplitFrame`]) — every
//!   frame's tile array is split into N contiguous bands (halves,
//!   quadrants, …) and each GPU rasterizes its band using the PR 6
//!   record/replay machinery ([`crate::shard`]) as the per-GPU unit.
//!   The geometry + tiling phase is duplicated on every GPU (no
//!   geometry redistribution — the classic SFR cost), a barrier
//!   separates geometry from raster, and each worker GPU ships its
//!   band's visible pixels to GPU 0 when its raster finishes.
//!
//! # Determinism
//!
//! All timing-model state mutation happens on the caller thread. The
//! only parallel stage is the *pure* [`shard::record_tiles`] fan-out
//! (no cache, DRAM or clock is touched), so every (N, dispatch,
//! topology) configuration is bit-identical at any worker-pool size.
//! Under the shared topology the GPUs' access streams interleave
//! **round-robin at a fixed granularity** — whole frames under AFR,
//! [`shard::SHARD_TILES`]-tile shards (GPU 0's shard, GPU 1's shard, …,
//! then the next round) under SFR — so the contended hierarchy sees one
//! well-defined serialized stream rather than a race.
//!
//! # N = 1 bit-identity
//!
//! A single-GPU rig is the existing pipeline: AFR degenerates to
//! [`Gpu::simulate_frame`] on GPU 0 with zero transfers, and SFR's
//! band split produces the exact shard sequence of
//! [`ShardMode::Force`], which PR 6 pinned bit-identical to the
//! sequential raster loop. The `tests/multi_gpu.rs` oracle pins both
//! against the single-GPU warm path (and, under `--features
//! reference`, against [`crate::ReferenceGpu`]).

use megsim_funcsim::FrameTrace;
use megsim_gfx::shader::ShaderTable;
use megsim_mem::{Link, LinkConfig, LinkStats, MemoryPool, Topology};
use serde::{Deserialize, Serialize};
use std::ops::Range;

use crate::config::GpuConfig;
use crate::gpu::{Gpu, ShardMode};
use crate::shard;
use crate::stats::{FrameStats, UnitBusy};

/// How the distributor assigns work to the N GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchMode {
    /// Frame `i` → GPU `i mod N`, whole.
    #[default]
    AlternateFrame,
    /// Every frame's tiles split into N contiguous bands, one per GPU.
    SplitFrame,
}

/// Configuration of an N-GPU rig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiGpuConfig {
    /// Number of GPU instances (≥ 1).
    pub gpus: usize,
    /// Work-distribution mode.
    pub dispatch: DispatchMode,
    /// Shared or private L2 + DRAM back ends.
    pub topology: Topology,
    /// Per-worker-GPU link to the display GPU.
    pub link: LinkConfig,
}

impl MultiGpuConfig {
    /// An `gpus`-instance rig with the baseline link.
    pub fn new(gpus: usize, dispatch: DispatchMode, topology: Topology) -> Self {
        Self {
            gpus,
            dispatch,
            topology,
            link: LinkConfig::baseline(),
        }
    }

    /// The degenerate single-GPU rig (bit-identical to [`Gpu`]).
    pub fn single() -> Self {
        Self::new(1, DispatchMode::AlternateFrame, Topology::Private)
    }
}

impl Default for MultiGpuConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// Pure work-assignment policy: which GPU owns a frame (AFR) or which
/// contiguous tile band each GPU rasterizes (SFR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkDistributor {
    gpus: usize,
    dispatch: DispatchMode,
}

impl WorkDistributor {
    /// Builds a distributor over `gpus` instances.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(gpus: usize, dispatch: DispatchMode) -> Self {
        assert!(gpus > 0, "a rig needs at least one GPU");
        Self { gpus, dispatch }
    }

    /// The dispatch mode.
    pub fn dispatch(&self) -> DispatchMode {
        self.dispatch
    }

    /// AFR assignment: frame `i` → GPU `i mod N`.
    pub fn gpu_for_frame(&self, frame_index: u64) -> usize {
        (frame_index % self.gpus as u64) as usize
    }

    /// SFR assignment: `tiles` split into N contiguous near-equal
    /// bands in tile-index order (the first `tiles % N` bands take the
    /// remainder). Bands can be empty when `tiles < N`.
    pub fn tile_ranges(&self, tiles: usize) -> Vec<Range<usize>> {
        let base = tiles / self.gpus;
        let rem = tiles % self.gpus;
        let mut start = 0;
        (0..self.gpus)
            .map(|g| {
                let len = base + usize::from(g < rem);
                let r = start..start + len;
                start += len;
                r
            })
            .collect()
    }
}

/// Cumulative work and traffic accounting of a rig.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiGpuReport {
    /// Frames each GPU worked on (every GPU, under SFR).
    pub frames_per_gpu: Vec<u64>,
    /// Per-GPU link counters (entry 0 — the display GPU — never moves).
    pub links: Vec<LinkStats>,
}

impl MultiGpuReport {
    /// Total interconnect line transfers.
    pub fn transfers(&self) -> u64 {
        self.links.iter().map(|l| l.transfers).sum()
    }

    /// Total interconnect payload bytes.
    pub fn bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Total cycles any lane was occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.links.iter().map(|l| l.busy_cycles).sum()
    }
}

/// Swaps GPU `g`'s topology-assigned back end in, runs `f`, swaps it
/// back out — the single point where a GPU's `access_run` stream is
/// routed through the [`MemoryPool`].
fn with_backend<R>(
    gpus: &mut [Gpu],
    pool: &mut MemoryPool,
    g: usize,
    f: impl FnOnce(&mut Gpu) -> R,
) -> R {
    std::mem::swap(&mut gpus[g].memory, pool.for_gpu(g));
    let r = f(&mut gpus[g]);
    std::mem::swap(&mut gpus[g].memory, pool.for_gpu(g));
    r
}

/// An N-GPU timing rig: N per-GPU front ends behind a
/// [`WorkDistributor`], over one [`MemoryPool`] and N−1 display links.
#[derive(Debug)]
pub struct MultiGpu {
    config: MultiGpuConfig,
    distributor: WorkDistributor,
    gpus: Vec<Gpu>,
    pool: MemoryPool,
    links: Vec<Link>,
    frames_per_gpu: Vec<u64>,
    /// Global sequence position (drives double-buffer parity on every
    /// GPU, like the single-GPU frame counter).
    frame_index: u64,
    /// Per-GPU replay scratch (texture-pipe clocks), reused per frame.
    tex_clock: Vec<Vec<u64>>,
}

impl MultiGpu {
    /// Builds a cold rig of `multi.gpus` instances of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `multi.gpus` is zero.
    pub fn new(config: GpuConfig, multi: MultiGpuConfig) -> Self {
        assert!(multi.gpus > 0, "a rig needs at least one GPU");
        let pool = MemoryPool::new(multi.topology, multi.gpus, config.l2.clone(), config.dram);
        let mut gpus: Vec<Gpu> = (0..multi.gpus).map(|_| Gpu::new(config.clone())).collect();
        for gpu in &mut gpus {
            // The rig drives the shard machinery itself (SFR) or lets
            // the per-frame policy decide (AFR); Auto keeps AFR frames
            // on the same path as the single-GPU pipeline.
            gpu.set_shard_mode(ShardMode::Auto);
        }
        let n_fp = config.fragment_processors;
        Self {
            distributor: WorkDistributor::new(multi.gpus, multi.dispatch),
            links: (0..multi.gpus).map(|_| Link::new(multi.link)).collect(),
            frames_per_gpu: vec![0; multi.gpus],
            frame_index: 0,
            tex_clock: vec![vec![0; n_fp]; multi.gpus],
            gpus,
            pool,
            config: multi,
        }
    }

    /// The rig configuration.
    pub fn multi_config(&self) -> &MultiGpuConfig {
        &self.config
    }

    /// Number of GPU instances.
    pub fn gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Cycle count of the furthest-ahead GPU clock.
    pub fn now(&self) -> u64 {
        self.gpus.iter().map(Gpu::now).max().unwrap_or(0)
    }

    /// Frames dispatched so far.
    pub fn frames(&self) -> u64 {
        self.frame_index
    }

    /// Cumulative work/traffic accounting.
    pub fn report(&self) -> MultiGpuReport {
        MultiGpuReport {
            frames_per_gpu: self.frames_per_gpu.clone(),
            links: self.links.iter().map(|l| *l.stats()).collect(),
        }
    }

    /// Writes back every dirty line of every back-end L2 (device idle
    /// at sequence end) and returns the writeback total. The caller
    /// attributes them to the last frame, as in the single-GPU path.
    pub fn drain_l2(&mut self) -> u64 {
        self.pool.flush_all()
    }

    /// Simulates one frame under the configured dispatch mode.
    ///
    /// # Panics
    ///
    /// Panics if the trace references shaders missing from `shaders`.
    pub fn simulate_frame(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        match self.distributor.dispatch() {
            DispatchMode::AlternateFrame => self.simulate_frame_afr(trace, shaders),
            DispatchMode::SplitFrame => self.simulate_frame_sfr(trace, shaders),
        }
    }

    /// AFR: the whole frame on GPU `i mod N`, then (away from GPU 0) a
    /// full-framebuffer scan-out transfer over the GPU's link. The link
    /// queue lives in the owning GPU's clock domain — only that GPU
    /// issues on it, so back-to-back frames on one GPU queue naturally.
    fn simulate_frame_afr(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        let g = self.distributor.gpu_for_frame(self.frame_index);
        self.gpus[g].frame_index = self.frame_index;
        let mut stats = with_backend(&mut self.gpus, &mut self.pool, g, |gpu| {
            gpu.simulate_frame(trace, shaders)
        });
        if g != 0 {
            let bytes = u64::from(trace.viewport.width) * u64::from(trace.viewport.height) * 4;
            let issue = self.gpus[g].now;
            let t = self.links[g].transfer_bytes(bytes, issue);
            let stall = t.ready_at - issue;
            stats.cycles += stall;
            self.gpus[g].now += stall;
        }
        self.frames_per_gpu[g] += 1;
        self.frame_index += 1;
        stats
    }

    /// SFR: duplicated geometry on every GPU, parallel *pure* tile
    /// recording over each GPU's band, shard-granular round-robin
    /// replay through each GPU's back end, then per-band region
    /// transfers to GPU 0.
    fn simulate_frame_sfr(&mut self, trace: &FrameTrace, shaders: &ShaderTable) -> FrameStats {
        let n = self.gpus.len();
        // Per-frame stat attribution, as in `Gpu::simulate_frame`.
        for gpu in &mut self.gpus {
            gpu.vertex_cache.reset_stats();
            for c in &mut gpu.texture_caches {
                c.reset_stats();
            }
            gpu.tile_cache.reset_stats();
            gpu.frame_index = self.frame_index;
        }
        self.pool.reset_stats();

        // SFR advances every GPU by the same frame span, so the local
        // clocks stay in lockstep; `frame_start` is shared.
        let frame_start = self.gpus[0].now;
        debug_assert!(self.gpus.iter().all(|g| g.now == frame_start));

        // Geometry + tiling, duplicated per GPU (round-robin through a
        // shared back end: GPU 0's whole stream, then GPU 1's, …).
        let mut busys = vec![UnitBusy::default(); n];
        let mut geom = vec![0u64; n];
        for g in 0..n {
            geom[g] = with_backend(&mut self.gpus, &mut self.pool, g, |gpu| {
                gpu.geometry_phase(trace, frame_start, &mut busys[g])
            });
        }
        let geometry_cycles = geom.iter().copied().max().unwrap_or(0);

        // Record (parallel, pure): each band chunked into the same
        // SHARD_TILES shards the single-GPU sharded path uses.
        let ranges = self.distributor.tile_ranges(trace.tiles.len());
        let mut jobs: Vec<(usize, Range<usize>)> = Vec::new();
        let mut shards_of: Vec<Range<usize>> = Vec::with_capacity(n);
        for (g, band) in ranges.iter().enumerate() {
            let first = jobs.len();
            let mut start = band.start;
            while start < band.end {
                let end = (start + shard::SHARD_TILES).min(band.end);
                jobs.push((g, start..end));
                start = end;
            }
            shards_of.push(first..jobs.len());
        }
        let gpu_config = &self.gpus[0].config;
        let frame_index = self.frame_index;
        let logs: Vec<shard::ShardLog> =
            if megsim_exec::thread_count() > 1 && !megsim_exec::in_pool() {
                megsim_exec::par_map_indexed(&jobs, |_, (_, range)| {
                    shard::record_tiles(trace, shaders, gpu_config, frame_index, range.clone())
                })
            } else {
                jobs.iter()
                    .map(|(_, range)| {
                        shard::record_tiles(trace, shaders, gpu_config, frame_index, range.clone())
                    })
                    .collect()
            };

        // Replay (serial, deterministic): round-robin across GPUs at
        // shard granularity — the fixed interleave that makes shared-
        // topology contention well-defined. All GPUs raster from the
        // post-geometry barrier.
        let raster_base = frame_start + geometry_cycles;
        let mut states: Vec<shard::ReplayState> =
            (0..n).map(|_| shard::ReplayState::default()).collect();
        let mut cursors: Vec<usize> = shards_of.iter().map(|r| r.start).collect();
        loop {
            let mut replayed = false;
            for g in 0..n {
                if cursors[g] >= shards_of[g].end {
                    continue;
                }
                let log = &logs[cursors[g]];
                cursors[g] += 1;
                replayed = true;
                std::mem::swap(&mut self.gpus[g].memory, self.pool.for_gpu(g));
                let gpu = &mut self.gpus[g];
                shard::replay_shard(
                    log,
                    trace,
                    &gpu.config,
                    &mut gpu.tile_cache,
                    &mut gpu.texture_caches,
                    &mut gpu.memory,
                    frame_index,
                    raster_base,
                    &mut busys[g],
                    &mut states[g],
                    &mut self.tex_clock[g],
                );
                std::mem::swap(&mut self.gpus[g].memory, self.pool.for_gpu(g));
            }
            if !replayed {
                break;
            }
        }
        for g in 0..n {
            busys[g].flush += states[g].flush_clock;
        }
        let raster_cycles = states.iter().map(|s| s.raster_cycles()).max().unwrap_or(0);

        // Region transfers: each worker GPU ships its band's visible
        // pixels to GPU 0 the moment its own raster drains; the frame
        // completes when compute *and* every transfer have landed.
        let mut done = raster_base + raster_cycles;
        for (g, state) in states.iter().enumerate().take(n).skip(1) {
            let issue = raster_base + state.raster_cycles();
            let t = self.links[g].transfer_bytes(state.visible_px * 4, issue);
            done = done.max(t.ready_at);
        }
        let overhead = self.gpus[0].config.frame_overhead_cycles;
        let cycles = done - frame_start + overhead;

        // Advance the rig: every GPU moves in lockstep.
        for gpu in &mut self.gpus {
            gpu.now = frame_start + cycles;
            gpu.frame_index = self.frame_index + 1;
        }
        for f in &mut self.frames_per_gpu {
            *f += 1;
        }
        self.frame_index += 1;

        // Merge per-GPU front-end counters; back-end counters come from
        // the pool (one contended hierarchy, or N private ones summed).
        let mut vertex_stats = megsim_mem::CacheStats::default();
        let mut texture_stats = megsim_mem::CacheStats::default();
        let mut tile_stats = megsim_mem::CacheStats::default();
        let mut unit_busy = UnitBusy::default();
        for (g, gpu) in self.gpus.iter().enumerate() {
            vertex_stats.merge(gpu.vertex_cache.stats());
            for c in &gpu.texture_caches {
                texture_stats.merge(c.stats());
            }
            tile_stats.merge(gpu.tile_cache.stats());
            unit_busy.merge(&busys[g]);
        }
        FrameStats {
            cycles,
            geometry_cycles,
            raster_cycles,
            instructions: trace.activity.total_instructions(),
            vertex_cache: vertex_stats,
            texture_cache: texture_stats,
            tile_cache: tile_stats,
            memory: self.pool.stats(),
            color_buffer_accesses: states.iter().map(|s| s.color_accesses).sum(),
            depth_buffer_accesses: states.iter().map(|s| s.depth_accesses).sum(),
            activity: std::sync::Arc::clone(&trace.activity),
            unit_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec2, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 10));
        t.add(ShaderProgram::fragment(
            0,
            "fs_tex",
            7,
            vec![TextureFilter::Bilinear],
        ));
        t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
        t
    }

    fn layered_frame(shift: f32) -> Frame {
        let tri = |tris: &[[(f32, f32, f32); 3]], fs: u32, blend| {
            let mut vertices = Vec::new();
            let mut indices = Vec::new();
            for t in tris {
                for &(x, y, z) in t {
                    indices.push(vertices.len() as u32);
                    let mut v = Vertex::at(Vec3::new(x, y, z));
                    v.uv = Vec2::new((x + 1.0) * 0.5, (y + 1.0) * 0.5);
                    vertices.push(v);
                }
            }
            DrawCall {
                mesh: Arc::new(Mesh::new(vertices, indices, 0x100)),
                transform: Mat4::translation(Vec3::new(shift, 0.0, 0.0)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(fs),
                texture: (fs != 1).then(|| TextureDesc::new(0, 64, 64, 4, 0x8000)),
                blend,
                depth_test: true,
            }
        };
        let mut f = Frame::new();
        f.draws.push(tri(
            &[
                [(-0.9, -0.9, 0.4), (0.9, -0.9, 0.4), (0.9, 0.9, 0.4)],
                [(-0.9, -0.9, 0.4), (0.9, 0.9, 0.4), (-0.9, 0.9, 0.4)],
            ],
            0,
            BlendMode::Opaque,
        ));
        f.draws.push(tri(
            &[[(-0.3, -0.8, -0.2), (0.8, -0.1, -0.2), (0.0, 0.9, -0.2)]],
            1,
            BlendMode::AlphaBlend,
        ));
        f
    }

    fn scene() -> Vec<Frame> {
        vec![layered_frame(0.0), layered_frame(0.1), layered_frame(-0.2)]
    }

    fn run_rig(
        mode: RenderMode,
        viewport: Viewport,
        multi: MultiGpuConfig,
    ) -> (Vec<FrameStats>, u64, MultiGpuReport) {
        let t = shaders();
        let mut cfg = GpuConfig::small(viewport.width, viewport.height);
        cfg.viewport = viewport;
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut rig = MultiGpu::new(cfg, multi);
        let stats: Vec<FrameStats> = scene()
            .iter()
            .map(|f| rig.simulate_frame(&renderer.render_frame(f, &t), &t))
            .collect();
        let now = rig.now();
        (stats, now, rig.report())
    }

    fn run_single(mode: RenderMode, viewport: Viewport) -> (Vec<FrameStats>, u64) {
        let t = shaders();
        let mut cfg = GpuConfig::small(viewport.width, viewport.height);
        cfg.viewport = viewport;
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut gpu = Gpu::new(cfg);
        let stats = scene()
            .iter()
            .map(|f| gpu.simulate_frame(&renderer.render_frame(f, &t), &t))
            .collect();
        (stats, gpu.now())
    }

    const MODES: [RenderMode; 3] = [
        RenderMode::TileBased,
        RenderMode::TileBasedDeferred,
        RenderMode::Immediate,
    ];

    #[test]
    fn distributor_splits_tiles_contiguously() {
        let d = WorkDistributor::new(4, DispatchMode::SplitFrame);
        assert_eq!(d.tile_ranges(10), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(d.tile_ranges(2), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(d.tile_ranges(0), vec![0..0, 0..0, 0..0, 0..0]);
        let d1 = WorkDistributor::new(1, DispatchMode::SplitFrame);
        assert_eq!(d1.tile_ranges(7), vec![0..7]);
    }

    #[test]
    fn distributor_alternates_frames() {
        let d = WorkDistributor::new(3, DispatchMode::AlternateFrame);
        assert_eq!(
            (0..6).map(|i| d.gpu_for_frame(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn single_gpu_rig_is_bit_identical_in_both_dispatch_modes() {
        let viewport = Viewport::new(96, 96, 32);
        for mode in MODES {
            let (base, base_now) = run_single(mode, viewport);
            for dispatch in [DispatchMode::AlternateFrame, DispatchMode::SplitFrame] {
                for topology in [Topology::Shared, Topology::Private] {
                    let multi = MultiGpuConfig::new(1, dispatch, topology);
                    let (stats, now, report) = run_rig(mode, viewport, multi);
                    assert_eq!(stats, base, "{mode:?} {dispatch:?} {topology:?}");
                    assert_eq!(now, base_now, "{mode:?} {dispatch:?} {topology:?} clock");
                    assert_eq!(report.transfers(), 0, "N=1 never crosses a link");
                }
            }
        }
    }

    #[test]
    fn afr_stripes_frames_and_pays_transfers() {
        let viewport = Viewport::new(96, 96, 32);
        let multi = MultiGpuConfig::new(2, DispatchMode::AlternateFrame, Topology::Private);
        let (stats, _, report) = run_rig(RenderMode::TileBased, viewport, multi);
        assert_eq!(report.frames_per_gpu, vec![2, 1]);
        // Frame 1 ran on GPU 1: a full 96×96×4-byte scan-out moved.
        assert_eq!(report.bytes(), 96 * 96 * 4);
        assert!(report.transfers() > 0);
        assert!(stats[1].cycles > 0);
    }

    #[test]
    fn sfr_splits_work_and_duplicates_geometry() {
        let viewport = Viewport::new(128, 128, 32);
        let single = run_single(RenderMode::TileBased, viewport).0;
        let multi = MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Private);
        let (stats, _, report) = run_rig(RenderMode::TileBased, viewport, multi);
        assert_eq!(report.frames_per_gpu, vec![3, 3]);
        // Both GPUs fetch the whole frame's vertices.
        assert!(stats[0].vertex_cache.accesses() >= 2 * single[0].vertex_cache.accesses());
        // GPU 1's band pixels crossed the link each frame.
        assert!(report.bytes() > 0);
        // Raster work split: the per-frame raster phase is shorter than
        // the single GPU's.
        assert!(stats[0].raster_cycles < single[0].raster_cycles);
    }

    #[test]
    fn shared_topology_contends_private_does_not() {
        let viewport = Viewport::new(128, 128, 32);
        let shared = run_rig(
            RenderMode::TileBased,
            viewport,
            MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Shared),
        )
        .0;
        let private = run_rig(
            RenderMode::TileBased,
            viewport,
            MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Private),
        )
        .0;
        // The duplicated polygon lists hit in the one shared L2 but
        // miss across two private ones, so the private rig re-fetches
        // from DRAM.
        let shared_dram: u64 = shared.iter().map(|s| s.dram_accesses()).sum();
        let private_dram: u64 = private.iter().map(|s| s.dram_accesses()).sum();
        assert!(
            private_dram > shared_dram,
            "private {private_dram} vs shared {shared_dram}"
        );
    }

    #[test]
    fn sfr_rig_is_thread_count_invariant() {
        let viewport = Viewport::new(96, 96, 16);
        for topology in [Topology::Shared, Topology::Private] {
            let multi = MultiGpuConfig::new(3, DispatchMode::SplitFrame, topology);
            megsim_exec::set_threads(1);
            let base = run_rig(RenderMode::TileBased, viewport, multi);
            for threads in [2, 8] {
                megsim_exec::set_threads(threads);
                let got = run_rig(RenderMode::TileBased, viewport, multi);
                assert_eq!(got, base, "{topology:?} at {threads} threads");
            }
            megsim_exec::set_threads(0);
        }
    }

    #[test]
    fn drain_flushes_every_backend() {
        let viewport = Viewport::new(96, 96, 32);
        let t = shaders();
        let cfg = GpuConfig::small(96, 96);
        let renderer = Renderer::new(RenderConfig {
            viewport,
            mode: RenderMode::TileBased,
        });
        let multi = MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Private);
        let mut rig = MultiGpu::new(cfg, multi);
        for f in scene() {
            rig.simulate_frame(&renderer.render_frame(&f, &t), &t);
        }
        let wb = rig.drain_l2();
        assert!(wb > 0);
        assert_eq!(rig.drain_l2(), 0, "second drain finds clean L2s");
    }

    #[test]
    fn empty_frames_cost_only_overhead_on_any_rig() {
        let viewport = Viewport::new(96, 96, 32);
        let t = shaders();
        let cfg = GpuConfig::small(96, 96);
        let overhead = cfg.frame_overhead_cycles;
        let fill = u64::from(cfg.vertex_queue.entries);
        let renderer = Renderer::new(RenderConfig {
            viewport,
            mode: RenderMode::TileBased,
        });
        let trace = renderer.render_frame(&Frame::new(), &t);
        for dispatch in [DispatchMode::AlternateFrame, DispatchMode::SplitFrame] {
            let mut rig = MultiGpu::new(
                cfg.clone(),
                MultiGpuConfig::new(4, dispatch, Topology::Shared),
            );
            let s0 = rig.simulate_frame(&trace, &t);
            assert_eq!(s0.cycles, overhead + fill, "{dispatch:?}");
            assert_eq!(s0.dram_accesses(), 0, "{dispatch:?}");
        }
    }
}
