//! # megsim-store
//!
//! Persistent cross-run frame-result store.
//!
//! The in-process content-addressed frame cache
//! (`megsim_exec::ConcurrentCache` keyed by `megsim_core::frame_cache`'s
//! 128-bit fingerprints) dies with the process, so repeated campaigns
//! over overlapping workloads re-simulate everything. This crate is the
//! disk tier underneath it: an on-disk, content-addressed
//! `fingerprint → FrameStats / FrameActivity` store that lets
//! characterize / simulate / representative passes start warm across
//! processes.
//!
//! * [`Store`] — sharded append-only log segments under one directory,
//!   a compact in-memory index built on open, CRC-guarded records, and
//!   atomic-rename segment rotation for crash consistency. Torn,
//!   bit-flipped or missing data *always* degrades to a miss; nothing
//!   the store reads can fail a run.
//! * [`codec`] — the versioned byte encoding of the two record types.
//!   Every counter is a `u64`, so records are bit-exact across
//!   processes, and any malformed payload decodes as a miss.
//!
//! The tier wiring (read-through on miss, write-behind on compute,
//! single-flight dedup of concurrent identical frames) lives in
//! `megsim_core::frame_cache`; this crate stays a plain durable map.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod crc;
pub mod segment;
pub mod store;

pub use store::{Store, StoreStats};
