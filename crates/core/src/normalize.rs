//! Input-parameter normalization (paper §III-C).
//!
//! The three groups of the vector of characteristics represent different
//! amounts of pipeline activity, so they are weighted by the fraction of
//! power each pipeline phase dissipates (Fig. 4): Geometry 0.108 for the
//! VSCV group, Raster 0.745 for the FSCV group, Tiling 0.147 for PRIM.
//! "A per-column normalization is performed by adding all the values
//! within each group of characteristics which are then weighted
//! accordingly" — i.e. every group is rescaled so its total mass equals
//! its weight.

use serde::{Deserialize, Serialize};

use megsim_cluster::PointMatrix;

use crate::features::FeatureMatrix;

/// Per-phase weights of the three feature groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupWeights {
    /// Weight of the VSCV group (Geometry Pipeline power fraction).
    pub geometry: f64,
    /// Weight of the FSCV group (Raster Pipeline power fraction).
    pub raster: f64,
    /// Weight of the PRIM element (Tiling Engine power fraction).
    pub tiling: f64,
}

impl GroupWeights {
    /// The paper's power-derived weights (§III-C).
    pub const fn paper() -> Self {
        Self {
            geometry: 0.108,
            raster: 0.745,
            tiling: 0.147,
        }
    }

    /// Equal weights — ablation baseline.
    pub const fn uniform() -> Self {
        Self {
            geometry: 1.0 / 3.0,
            raster: 1.0 / 3.0,
            tiling: 1.0 / 3.0,
        }
    }

    /// Shader-count-only characterization (no Tiling information) —
    /// the strawman §III-B argues against.
    pub const fn shader_only() -> Self {
        Self {
            geometry: 0.127,
            raster: 0.873,
            tiling: 0.0,
        }
    }
}

impl Default for GroupWeights {
    fn default() -> Self {
        Self::paper()
    }
}

/// Normalizes a feature matrix into the weighted dataset that feeds the
/// clustering step: each group is rescaled so its total mass equals the
/// group weight.
///
/// Groups with zero mass (e.g. a frame range that never emits
/// primitives) contribute zero columns rather than NaNs.
pub fn normalize(matrix: &FeatureMatrix, weights: &GroupWeights) -> PointMatrix {
    let p = matrix.vscv_len;
    let q = matrix.fscv_len;
    let d = matrix.dim();
    // Group masses.
    let mut mass = [0.0f64; 3];
    for row in matrix.rows.iter_rows() {
        for (c, &v) in row.iter().enumerate() {
            let g = group_of(c, p, q);
            mass[g] += v;
        }
    }
    let scale = [
        if mass[0] > 0.0 {
            weights.geometry / mass[0]
        } else {
            0.0
        },
        if mass[1] > 0.0 {
            weights.raster / mass[1]
        } else {
            0.0
        },
        if mass[2] > 0.0 {
            weights.tiling / mass[2]
        } else {
            0.0
        },
    ];
    // One linear pass over the flat buffer; the column index cycles
    // modulo `d`.
    let flat: Vec<f64> = matrix
        .rows
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| v * scale[group_of(i % d, p, q)])
        .collect();
    PointMatrix::from_flat(flat, d)
}

/// Incremental group-mass accumulator for the single-pass streaming
/// pipeline: feed rows with [`RunningGroupMass::add_row`] in arrival
/// order and read off per-column scales at any point.
///
/// The accumulation is the **exact floating-point fold** of
/// [`normalize`] — row by row, column within row — so after the last
/// row the masses, and therefore the scales, are bitwise what the batch
/// pass computes. That identity is what makes the exact-reservoir
/// streaming mode reproduce `select_representatives` bit for bit.
#[derive(Debug, Clone)]
pub struct RunningGroupMass {
    p: usize,
    q: usize,
    mass: [f64; 3],
}

impl RunningGroupMass {
    /// A zeroed accumulator for rows with `vscv_len` geometry columns
    /// and `fscv_len` raster columns (plus the trailing PRIM column).
    pub fn new(vscv_len: usize, fscv_len: usize) -> Self {
        Self {
            p: vscv_len,
            q: fscv_len,
            mass: [0.0; 3],
        }
    }

    /// Row dimensionality `p + q + 1`.
    pub fn dim(&self) -> usize {
        self.p + self.q + 1
    }

    /// Accumulates one raw feature row (same column-ascending add
    /// sequence as the batch mass pass).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    pub fn add_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim(), "row length != feature dim");
        for (c, &v) in row.iter().enumerate() {
            self.mass[group_of(c, self.p, self.q)] += v;
        }
    }

    /// Writes the current per-column scale vector into `out` (cleared
    /// first; reuse the buffer across rows to stay allocation-free).
    /// Column `c`'s scale is its group's `weight / mass` — the exact
    /// value [`normalize`] multiplies by — or `0` for a zero-mass
    /// group.
    pub fn column_scales_into(&self, weights: &GroupWeights, out: &mut Vec<f64>) {
        let scale = [
            if self.mass[0] > 0.0 {
                weights.geometry / self.mass[0]
            } else {
                0.0
            },
            if self.mass[1] > 0.0 {
                weights.raster / self.mass[1]
            } else {
                0.0
            },
            if self.mass[2] > 0.0 {
                weights.tiling / self.mass[2]
            } else {
                0.0
            },
        ];
        out.clear();
        out.extend((0..self.dim()).map(|c| scale[group_of(c, self.p, self.q)]));
    }

    /// Allocating convenience wrapper over
    /// [`RunningGroupMass::column_scales_into`].
    pub fn column_scales(&self, weights: &GroupWeights) -> Vec<f64> {
        let mut out = Vec::new();
        self.column_scales_into(weights, &mut out);
        out
    }
}

#[inline]
fn group_of(column: usize, p: usize, q: usize) -> usize {
    if column < p {
        0
    } else if column < p + q {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix::from_rows(
            vec![
                vec![1.0, 3.0, 10.0, 30.0, 5.0],
                vec![2.0, 2.0, 20.0, 20.0, 15.0],
            ],
            2,
            2,
        )
    }

    #[test]
    fn group_masses_equal_weights_after_normalization() {
        let norm = normalize(&matrix(), &GroupWeights::paper());
        let vscv_mass: f64 = norm.iter_rows().map(|r| r[0] + r[1]).sum();
        let fscv_mass: f64 = norm.iter_rows().map(|r| r[2] + r[3]).sum();
        let prim_mass: f64 = norm.iter_rows().map(|r| r[4]).sum();
        assert!((vscv_mass - 0.108).abs() < 1e-12);
        assert!((fscv_mass - 0.745).abs() < 1e-12);
        assert!((prim_mass - 0.147).abs() < 1e-12);
    }

    #[test]
    fn relative_structure_within_group_is_preserved() {
        let norm = normalize(&matrix(), &GroupWeights::uniform());
        // Row 1's PRIM is 3× row 0's, before and after.
        assert!((norm.row(1)[4] / norm.row(0)[4] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_removes_a_group() {
        let norm = normalize(&matrix(), &GroupWeights::shader_only());
        assert_eq!(norm.row(0)[4], 0.0);
        assert_eq!(norm.row(1)[4], 0.0);
    }

    #[test]
    fn zero_mass_group_yields_zeros_not_nan() {
        let m = FeatureMatrix::from_rows(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 2.0]], 1, 1);
        let norm = normalize(&m, &GroupWeights::paper());
        assert!(norm.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(norm.row(0)[0], 0.0);
    }

    #[test]
    fn running_mass_reproduces_batch_normalization_bitwise() {
        // Awkward magnitudes so any fold-order difference shows in the
        // low bits.
        let m = FeatureMatrix::from_rows(
            (0..37)
                .map(|i| {
                    (0..5)
                        .map(|c| ((i * 7 + c * 13) as f64).sin().abs() * 10f64.powi((c % 3) as i32))
                        .collect()
                })
                .collect(),
            2,
            2,
        );
        for weights in [
            GroupWeights::paper(),
            GroupWeights::uniform(),
            GroupWeights::shader_only(),
        ] {
            let batch = normalize(&m, &weights);
            let mut running = RunningGroupMass::new(2, 2);
            for row in m.rows.iter_rows() {
                running.add_row(row);
            }
            let scales = running.column_scales(&weights);
            for (i, row) in m.rows.iter_rows().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    assert_eq!(
                        (v * scales[c]).to_bits(),
                        batch.row(i)[c].to_bits(),
                        "row {i} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn running_mass_handles_zero_mass_groups() {
        let mut running = RunningGroupMass::new(1, 1);
        running.add_row(&[0.0, 0.0, 2.0]);
        let scales = running.column_scales(&GroupWeights::paper());
        assert_eq!(scales[0], 0.0);
        assert_eq!(scales[1], 0.0);
        assert!(scales[2].is_finite() && scales[2] > 0.0);
    }

    #[test]
    fn paper_weights_sum_to_one() {
        let w = GroupWeights::paper();
        assert!((w.geometry + w.raster + w.tiling - 1.0).abs() < 1e-9);
    }
}
