//! No-op derive macros backing the offline `serde` stub.
//!
//! Emitting an empty token stream is valid for a derive macro; the
//! stub `Serialize`/`Deserialize` traits are never bounded on, so no
//! impls are required — the derives only need to parse.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
