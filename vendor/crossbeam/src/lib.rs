//! Offline vendored stub of the `crossbeam` surface this workspace
//! uses: scoped threads and a handful of re-exported atomics helpers.
//!
//! Since Rust 1.63 the standard library ships scoped threads natively,
//! so the stub simply re-exports `std::thread::scope` under the
//! `crossbeam::thread` path the workspace imports. Semantics match
//! what `megsim-exec` needs: spawned threads may borrow from the
//! enclosing stack frame and are all joined when the scope exits, with
//! panics propagated to the caller.

#![forbid(unsafe_code)]

/// Scoped threads (std-backed).
pub mod thread {
    pub use std::thread::{available_parallelism, scope, Scope, ScopedJoinHandle};
}

/// Atomics re-exports, mirroring `crossbeam::atomic`'s role as the
/// go-to import for lock-free counters.
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
