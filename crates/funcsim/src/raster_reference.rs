//! The original scalar Raster Pipeline, kept verbatim as the oracle for
//! the optimized hot path in [`crate::raster`].
//!
//! Every pixel re-evaluates all three edge functions from scratch via
//! [`edge_function`] and every primitive allocates a fresh quad `Vec` —
//! exactly the code the incremental rasterizer replaced, except for the
//! one bug fix both share (bounding boxes snap to even offsets relative
//! to the *rect origin*, so odd tile origins cannot misalign quads).
//! The equivalence proptest at the bottom of this file pins the
//! optimized rasterizer to this implementation bit for bit; the
//! `reference` cargo feature exposes it to benchmarks so speedups are
//! measured against the true baseline.

use megsim_gfx::draw::{Frame, Viewport};
use megsim_gfx::geometry::Primitive;
use megsim_gfx::math::{edge_function, Vec2};
use megsim_gfx::shader::ShaderTable;

use crate::activity::FrameActivity;
use crate::binning::{bin_primitives, BinScratch, TileBins};
use crate::geometry::{process_draw, GeomScratch, TransformedDraw};
use crate::raster::{count_prim, quad_pixels, texture_lod, tile_prim, DepthBuffer, DepthPolicy};
use crate::renderer::{RenderConfig, RenderMode};
use crate::trace::{FrameTrace, QuadTrace, TileTrace};

/// Renders a frame end to end through the reference Raster Pipeline
/// (Geometry Pipeline and Tiling Engine are shared with the optimized
/// path — only rasterization differs), using fresh allocations
/// throughout, as the original renderer did.
pub fn render_frame_reference(
    config: RenderConfig,
    frame: &Frame,
    shaders: &ShaderTable,
    collect_trace: bool,
) -> FrameTrace {
    let viewport = config.viewport;
    let mode = config.mode;
    let mut activity = FrameActivity::new(shaders.vertex_count(), shaders.fragment_count());
    let transformed: Vec<_> = frame
        .draws
        .iter()
        .enumerate()
        .map(|(i, draw)| {
            process_draw(
                draw,
                i as u32,
                viewport,
                shaders,
                &mut activity,
                collect_trace,
                &mut GeomScratch::default(),
            )
        })
        .collect();
    let bins = if mode == RenderMode::Immediate {
        TileBins::empty()
    } else {
        bin_primitives(
            &transformed,
            viewport,
            &mut activity,
            &mut BinScratch::default(),
        )
    };
    let tiles = rasterize_frame_reference(
        frame,
        &transformed,
        &bins,
        viewport,
        shaders,
        mode,
        &mut activity,
        collect_trace,
    );
    FrameTrace {
        mode,
        viewport,
        geometry: transformed.into_iter().map(|t| t.geometry).collect(),
        tiles,
        activity: std::sync::Arc::new(activity),
    }
}

/// Reference counterpart of [`crate::raster::rasterize_frame`].
#[allow(clippy::too_many_arguments)]
pub fn rasterize_frame_reference(
    frame: &Frame,
    draws: &[TransformedDraw],
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    mode: RenderMode,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    match mode {
        RenderMode::TileBased | RenderMode::TileBasedDeferred => rasterize_tiles(
            frame,
            bins,
            viewport,
            shaders,
            mode == RenderMode::TileBasedDeferred,
            activity,
            collect_trace,
        ),
        RenderMode::Immediate => {
            rasterize_immediate(frame, draws, viewport, shaders, activity, collect_trace)
        }
    }
}

/// TBR / TBDR path: rasterize tile by tile in bin order.
fn rasterize_tiles(
    frame: &Frame,
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    hidden_surface_removal: bool,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    let mut tiles_out = Vec::new();
    let mut depth = DepthBuffer::new();
    let tiles_x = viewport.tiles_x();
    for (tile_index, prim_indices) in bins.touched_tiles() {
        let tx = tile_index % tiles_x;
        let ty = tile_index / tiles_x;
        let rect = viewport.tile_rect(tx, ty);
        let origin = (rect.0, rect.1);
        depth.reset(viewport.tile_size, viewport.tile_size, true);
        // Pass 1: rasterize every primitive. Opaque prims resolve depth
        // (and, under HSR, the per-pixel winner); others test only.
        let mut pending: Vec<(u32, Vec<QuadTrace>)> = Vec::new(); // (prim idx, quads)
        let mut deferred: Vec<u32> = Vec::new(); // non-opaque prims (HSR)
        for &pi in prim_indices {
            let binned = bins.prim(pi);
            let draw = &frame.draws[binned.draw_index as usize];
            let policy = DepthPolicy::of(draw);
            if hidden_surface_removal && policy != DepthPolicy::TestWrite {
                // Transparent/UI geometry is shaded after the opaque
                // resolve in a deferred pipeline.
                deferred.push(pi);
                continue;
            }
            let winner_seq = if hidden_surface_removal {
                Some(pi)
            } else {
                None
            };
            let mut quads = Vec::new();
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                policy,
                winner_seq,
                &mut depth,
                &mut quads,
            );
            if !quads.is_empty() {
                pending.push((pi, quads));
            }
        }
        // Pass 2 (HSR only): keep only the winning fragments of opaque
        // prims, then shade deferred geometry against the final depth.
        if hidden_surface_removal {
            for (pi, quads) in &mut pending {
                for quad in quads.iter_mut() {
                    let mut visible = 0u8;
                    for (mask, dx, dy) in quad_pixels() {
                        if quad.coverage & mask == 0 {
                            continue;
                        }
                        let lx = u32::from(quad.x) + dx - origin.0;
                        let ly = u32::from(quad.y) + dy - origin.1;
                        if depth.winner[depth.index(lx, ly)] == *pi {
                            visible |= mask;
                        }
                    }
                    let culled = quad.visible.count_ones() - (quad.visible & visible).count_ones();
                    activity.fragments_hsr_culled += u64::from(culled);
                    quad.visible &= visible;
                }
            }
            for &pi in &deferred {
                let binned = bins.prim(pi);
                let draw = &frame.draws[binned.draw_index as usize];
                let mut quads = Vec::new();
                rasterize_prim(
                    &binned.prim,
                    rect,
                    origin,
                    DepthPolicy::of(draw),
                    None,
                    &mut depth,
                    &mut quads,
                );
                if !quads.is_empty() {
                    pending.push((pi, quads));
                }
            }
            // Restore submission order after the deferred append.
            pending.sort_by_key(|(pi, _)| *pi);
        }
        // Counters + trace emission.
        let mut prims_out = Vec::new();
        for (pi, quads) in pending {
            let binned = bins.prim(pi);
            let draw = &frame.draws[binned.draw_index as usize];
            count_prim(draw, &quads, shaders, activity);
            if collect_trace {
                let lod = draw
                    .texture
                    .map(|t| texture_lod(&binned.prim, t.width, t.height))
                    .unwrap_or(0);
                prims_out.push(tile_prim(draw, binned.draw_index, lod, quads));
            }
        }
        if collect_trace && !prims_out.is_empty() {
            tiles_out.push(TileTrace {
                tile_index,
                prims: prims_out,
            });
        }
    }
    tiles_out
}

/// IMR path: full-screen depth buffer, strict submission order, one
/// whole-screen pseudo-tile in the trace.
fn rasterize_immediate(
    frame: &Frame,
    draws: &[TransformedDraw],
    viewport: Viewport,
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    let mut depth = DepthBuffer::new();
    depth.reset(viewport.width, viewport.height, true);
    let rect = (0, 0, viewport.width, viewport.height);
    let mut prims_out = Vec::new();
    for transformed in draws {
        let draw = &frame.draws[transformed.geometry.draw_index as usize];
        let policy = DepthPolicy::of(draw);
        for prim in &transformed.prims {
            let mut quads = Vec::new();
            rasterize_prim(prim, rect, (0, 0), policy, None, &mut depth, &mut quads);
            if quads.is_empty() {
                continue;
            }
            count_prim(draw, &quads, shaders, activity);
            if collect_trace {
                let lod = draw
                    .texture
                    .map(|t| texture_lod(prim, t.width, t.height))
                    .unwrap_or(0);
                prims_out.push(tile_prim(draw, transformed.geometry.draw_index, lod, quads));
            }
        }
    }
    if collect_trace && !prims_out.is_empty() {
        vec![TileTrace {
            tile_index: 0,
            prims: prims_out,
        }]
    } else {
        Vec::new()
    }
}

/// The original scalar rasterizer: full edge-function evaluation at
/// every pixel center.
fn rasterize_prim(
    prim: &Primitive,
    (rx0, ry0, rx1, ry1): (u32, u32, u32, u32),
    origin: (u32, u32),
    policy: DepthPolicy,
    winner_seq: Option<u32>,
    depth: &mut DepthBuffer,
    quads: &mut Vec<QuadTrace>,
) {
    let a = prim.v[0].pos2();
    let b = prim.v[1].pos2();
    let c = prim.v[2].pos2();
    let area2 = prim.signed_area2();
    debug_assert!(area2 > 0.0, "backfaces culled in geometry");
    let inv_area2 = 1.0 / area2;
    // Clamp the primitive bbox to the rect, snapping to even offsets
    // relative to the rect origin so whole quads are walked even when
    // the rect corner is odd.
    let (min_x, min_y, max_x, max_y) = prim.bounds();
    let x0 = rx0 + ((min_x.floor().max(rx0 as f32) as u32 - rx0) & !1);
    let y0 = ry0 + ((min_y.floor().max(ry0 as f32) as u32 - ry0) & !1);
    let x1 = (max_x.ceil().min(rx1 as f32) as u32).min(rx1);
    let y1 = (max_y.ceil().min(ry1 as f32) as u32).min(ry1);
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    // Top-left fill rule flags per edge.
    let top_left = |p: Vec2, q: Vec2| (p.y == q.y && q.x < p.x) || q.y > p.y;
    let tl = [top_left(a, b), top_left(b, c), top_left(c, a)];
    let mut qy = y0;
    while qy < y1 {
        let mut qx = x0;
        while qx < x1 {
            let mut coverage = 0u8;
            let mut visible = 0u8;
            let mut uv_sum = Vec2::default();
            let mut covered_px = 0u32;
            for (mask, dx, dy) in quad_pixels() {
                let px = qx + dx;
                let py = qy + dy;
                if px >= x1 || py >= y1 {
                    continue;
                }
                let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                let e0 = edge_function(a, b, p);
                let e1 = edge_function(b, c, p);
                let e2 = edge_function(c, a, p);
                let inside = (e0 > 0.0 || (e0 == 0.0 && tl[0]))
                    && (e1 > 0.0 || (e1 == 0.0 && tl[1]))
                    && (e2 > 0.0 || (e2 == 0.0 && tl[2]));
                if !inside {
                    continue;
                }
                coverage |= mask;
                covered_px += 1;
                // Affine barycentric interpolation (e0 spans edge a→b and
                // therefore weights vertex 2, etc.).
                let w2 = e0 * inv_area2;
                let w0 = e1 * inv_area2;
                let w1 = e2 * inv_area2;
                let z = prim.v[0].z * w0 + prim.v[1].z * w1 + prim.v[2].z * w2;
                let uv = prim.v[0].uv * w0 + prim.v[1].uv * w1 + prim.v[2].uv * w2;
                uv_sum = uv_sum + uv;
                let idx = depth.index(px - origin.0, py - origin.1);
                let passes = match policy {
                    DepthPolicy::Always => true,
                    DepthPolicy::TestOnly | DepthPolicy::TestWrite => z < depth.depth[idx],
                };
                if passes {
                    visible |= mask;
                    if policy == DepthPolicy::TestWrite {
                        depth.depth[idx] = z;
                        if let Some(seq) = winner_seq {
                            depth.winner[idx] = seq;
                        }
                    }
                }
            }
            if coverage != 0 {
                quads.push(QuadTrace {
                    x: qx as u16,
                    y: qy as u16,
                    coverage,
                    visible,
                    uv: uv_sum / covered_px.max(1) as f32,
                });
            }
            qx += 2;
        }
        qy += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renderer::Renderer;
    use megsim_gfx::draw::{BlendMode, DrawCall};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 10));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            7,
            vec![TextureFilter::Bilinear],
        ));
        t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
        t
    }

    /// A draw whose mesh holds `tris` CCW screen-space-ish triangles in
    /// NDC (identity transform maps NDC straight to the viewport).
    fn draw_of(
        tris: &[[(f32, f32, f32); 3]],
        fs: u32,
        blend: BlendMode,
        depth_test: bool,
    ) -> DrawCall {
        let mut vertices = Vec::new();
        let mut indices = Vec::new();
        for t in tris {
            for &(x, y, z) in t {
                indices.push(vertices.len() as u32);
                let mut v = Vertex::at(Vec3::new(x, y, z));
                v.uv = Vec2::new((x + 1.0) * 0.5, (y + 1.0) * 0.5);
                vertices.push(v);
            }
        }
        DrawCall {
            mesh: Arc::new(Mesh::new(vertices, indices, 0x100)),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(fs),
            texture: (fs == 0).then(|| TextureDesc::new(0, 64, 64, 4, 0x8000)),
            blend,
            depth_test,
        }
    }

    /// Strategy: one triangle as 3 NDC vertices with a shared depth —
    /// winding is unconstrained (backfaces exercise geometry culling).
    fn tri_strategy() -> impl Strategy<Value = [(f32, f32, f32); 3]> {
        let v = (-1.2f32..1.2, -1.2f32..1.2);
        (v.clone(), v.clone(), v, 0.05f32..0.95)
            .prop_map(|((x0, y0), (x1, y1), (x2, y2), z)| [(x0, y0, z), (x1, y1, z), (x2, y2, z)])
    }

    fn frame_strategy() -> impl Strategy<Value = Frame> {
        // Up to 3 draws with varied blend/depth state, 1..6 tris each.
        let blend = (0u32..3).prop_map(|b| match b {
            0 => BlendMode::Opaque,
            1 => BlendMode::AlphaBlend,
            _ => BlendMode::Additive,
        });
        let draw = (
            proptest::collection::vec(tri_strategy(), 1..6),
            0u32..2,
            blend,
            proptest::bool::ANY,
        );
        proptest::collection::vec(draw, 1..4).prop_map(|draws| {
            let mut f = Frame::new();
            for (tris, fs, blend, depth_test) in draws {
                f.draws.push(draw_of(&tris, fs, blend, depth_test));
            }
            f
        })
    }

    fn assert_matches_reference(frame: &Frame, viewport: Viewport) {
        let t = shaders();
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let config = RenderConfig { viewport, mode };
            let reference = render_frame_reference(config, frame, &t, true);
            let optimized = Renderer::new(config).render_frame(frame, &t);
            assert_eq!(optimized.activity, reference.activity, "{mode:?} activity");
            assert_eq!(optimized.tiles, reference.tiles, "{mode:?} tiles");
            assert_eq!(optimized.geometry, reference.geometry, "{mode:?} geometry");
            // The activity-only pass must agree too (it takes different
            // fast paths through the sink machinery).
            let fast = Renderer::new(config).frame_activity(frame, &t);
            assert_eq!(fast, *reference.activity, "{mode:?} fast activity");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn optimized_rasterizer_is_bit_identical_to_reference(frame in frame_strategy()) {
            assert_matches_reference(&frame, Viewport::new(128, 128, 32));
        }

        #[test]
        fn bit_identical_on_odd_viewports(frame in frame_strategy()) {
            // Odd target and odd tile size: tile origins are odd, which
            // the pre-fix bbox snapping mishandled (underflow panic).
            assert_matches_reference(&frame, Viewport::new(33, 33, 11));
            assert_matches_reference(&frame, Viewport::new(33, 33, 32));
        }

        #[test]
        fn bit_identical_on_large_viewport(frame in frame_strategy()) {
            // Large tiles make the span culling + trivial accept paths
            // do real work (wide bboxes, fully-interior quads).
            assert_matches_reference(&frame, Viewport::new(256, 256, 64));
        }
    }

    #[test]
    fn thin_sliver_and_shared_edge_match_reference() {
        // Deterministic edge cases proptest may miss: a 1-px-high sliver
        // crossing the whole screen and two triangles sharing an edge
        // (fill rule must not double-shade the shared edge).
        let mut f = Frame::new();
        f.draws.push(draw_of(
            &[[(-1.1, -0.01, 0.3), (1.1, 0.0, 0.3), (-1.1, 0.01, 0.3)]],
            0,
            BlendMode::Opaque,
            true,
        ));
        f.draws.push(draw_of(
            &[
                [(-0.8, -0.8, 0.5), (0.8, -0.8, 0.5), (0.8, 0.8, 0.5)],
                [(-0.8, -0.8, 0.5), (0.8, 0.8, 0.5), (-0.8, 0.8, 0.5)],
            ],
            1,
            BlendMode::Opaque,
            true,
        ));
        assert_matches_reference(&f, Viewport::new(128, 128, 32));
        assert_matches_reference(&f, Viewport::new(33, 33, 11));
    }
}
