//! Compares the three rendering architectures (TBR / TBDR+HSR / IMR)
//! on the benchmark suite — the §II-A background claims quantified.
use megsim_bench::{Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    print!("{}", megsim_bench::experiments::rendering_modes(&ctx, 40));
}
