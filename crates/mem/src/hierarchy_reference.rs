//! The pre-optimization DRAM and L2-hierarchy models, kept verbatim as
//! the oracle (and the honest benchmark baseline) for the shift-mapped
//! [`crate::dram::Dram`] and run-coalescing
//! [`crate::hierarchy::MemoryHierarchy`].
//!
//! [`ReferenceDram`] re-derives the bank/row decomposition with 64-bit
//! divides on every access and recomputes the transfer-cycle count per
//! call; [`ReferenceMemoryHierarchy`] issues one scalar
//! [`ReferenceCache`] lookup per access. Together with
//! [`ReferenceCache`] these are exactly the memory models the seed's
//! timing simulator ran on, so `ReferenceGpu` (in `megsim-timing`)
//! measures the true before/after of the timing fast path. The
//! proptests at the bottom drive random timed access streams through
//! both model pairs and assert access-by-access bit-equality.

use crate::cache_reference::ReferenceCache;
use crate::dram::{DramAccess, DramConfig, DramStats};
use crate::hierarchy::{HierarchyAccess, MemoryStats};
use crate::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The pre-optimization banked DRAM device (divide-based address
/// decomposition, no precomputed transfer width).
#[derive(Debug, Clone)]
pub struct ReferenceDram {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free_at: u64,
    stats: DramStats,
}

impl ReferenceDram {
    /// Builds an idle DRAM with all rows closed.
    pub fn new(config: DramConfig) -> Self {
        Self {
            banks: vec![Bank::default(); config.banks as usize],
            bus_free_at: 0,
            stats: DramStats::default(),
            config,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets counters; bank state persists.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size;
        let bank = (line % u64::from(self.config.banks)) as usize;
        let row = addr / (self.config.row_bytes * u64::from(self.config.banks));
        (bank, row)
    }

    /// Performs one line-sized access starting no earlier than `now`.
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> DramAccess {
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        let row_hit = bank.open_row == Some(row);
        let latency_core = if row_hit {
            self.config.row_hit_latency
        } else {
            self.config.row_miss_latency
        };
        let start = now.max(bank.busy_until);
        let transfer = self.config.transfer_cycles();
        let bus_start = (start + latency_core).max(self.bus_free_at);
        let ready_at = bus_start + transfer;
        bank.open_row = Some(row);
        bank.busy_until = bus_start;
        self.bus_free_at = ready_at;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.bus_busy_cycles += transfer;
        DramAccess {
            ready_at,
            latency: ready_at - now,
            row_hit,
        }
    }
}

/// The pre-optimization shared L2 + DRAM back end: one scalar
/// [`ReferenceCache`] lookup per access, refilling through
/// [`ReferenceDram`].
#[derive(Debug, Clone)]
pub struct ReferenceMemoryHierarchy {
    l2: ReferenceCache,
    dram: ReferenceDram,
}

impl ReferenceMemoryHierarchy {
    /// Builds the hierarchy from cache and DRAM configurations.
    pub fn new(l2: CacheConfig, dram: DramConfig) -> Self {
        Self {
            l2: ReferenceCache::new(l2),
            dram: ReferenceDram::new(dram),
        }
    }

    /// Accesses `addr` through the L2; on a miss the line is fetched
    /// from DRAM and any dirty victim is written back.
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> HierarchyAccess {
        let l2_latency = self.l2.config().latency;
        let result = self.l2.access(addr, is_write);
        if result.hit {
            return HierarchyAccess {
                ready_at: now + l2_latency,
                latency: l2_latency,
                l2_hit: true,
            };
        }
        if let Some(victim) = result.writeback {
            self.dram.access(victim, now + l2_latency, true);
        }
        let fill = self.dram.access(addr, now + l2_latency, false);
        HierarchyAccess {
            ready_at: fill.ready_at,
            latency: fill.ready_at - now,
            l2_hit: false,
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
        }
    }

    /// Resets counters (cache/DRAM state persists across frames).
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::Dram;
    use crate::hierarchy::MemoryHierarchy;
    use proptest::prelude::*;

    /// Random timed access stream: (line index, issue-cycle delta,
    /// is_write).
    fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
        proptest::collection::vec((0u64..256, 0u64..200, proptest::bool::ANY), 1..200)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The shift-mapped DRAM replays the divide-based reference
        /// access-by-access.
        #[test]
        fn dram_matches_reference(stream in stream_strategy()) {
            let config = DramConfig::lpddr3_baseline();
            let mut optimized = Dram::new(config);
            let mut reference = ReferenceDram::new(config);
            let mut now = 0;
            for &(line, dt, is_write) in &stream {
                now += dt;
                let addr = line * config.line_size;
                prop_assert_eq!(
                    optimized.access(addr, now, is_write),
                    reference.access(addr, now, is_write)
                );
            }
            prop_assert_eq!(optimized.stats(), reference.stats());
        }

        /// The run-coalescing hierarchy replays the scalar reference
        /// access-by-access (timings, hit levels and all counters).
        #[test]
        fn hierarchy_matches_reference(stream in stream_strategy()) {
            let l2 = CacheConfig::new("L2", 4096, 64, 2, 8, 18);
            let dram = DramConfig::lpddr3_baseline();
            let mut optimized = MemoryHierarchy::new(l2.clone(), dram);
            let mut reference = ReferenceMemoryHierarchy::new(l2, dram);
            let mut now = 0;
            for &(line, dt, is_write) in &stream {
                now += dt;
                let addr = line * 64;
                prop_assert_eq!(
                    optimized.access(addr, now, is_write),
                    reference.access(addr, now, is_write)
                );
            }
            prop_assert_eq!(optimized.stats(), reference.stats());
        }
    }
}
