//! The streaming replay memory contract, enforced with a byte fence:
//! producing frame `f` must never read past frame `f`'s end offset in
//! the trace, on either wire version. This is what bounds peak decoder
//! memory to a single frame — the decoder cannot buffer bytes it is
//! forbidden to read.

use std::cell::Cell;
use std::io::Read;
use std::rc::Rc;

use megsim_gfx::draw::Frame;
use megsim_gl::{encode_with_version, record_sequence, FrameIter};
use megsim_workloads::by_alias;

/// A reader that refuses to hand out bytes at or beyond `fence`: any
/// read past it errors, failing the decode loudly instead of letting a
/// read-ahead implementation pass unnoticed.
struct FencedReader<'a> {
    data: &'a [u8],
    pos: usize,
    fence: Rc<Cell<usize>>,
}

impl Read for FencedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let fence = self.fence.get();
        if self.pos >= fence {
            return Err(std::io::Error::other(
                "decoder read beyond the current frame's bytes",
            ));
        }
        let n = buf
            .len()
            .min(fence - self.pos)
            .min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn recorded_bytes(version: u16) -> Vec<u8> {
    let workload = by_alias("hcr", 0.005, 1).expect("known alias");
    let frames: Vec<Frame> = (0..6).map(|i| workload.frame(i)).collect();
    let stream = record_sequence(workload.shaders(), &frames);
    encode_with_version(&stream, version)
        .expect("supported version")
        .to_vec()
}

#[test]
// while-let (not a for loop) so `iter` stays callable for byte_offset.
#[allow(clippy::while_let_on_iterator)]
fn frame_decode_never_reads_past_the_frame_boundary() {
    for version in [1u16, 2] {
        let bytes = recorded_bytes(version);
        // Pass 1: unrestricted replay, recording each frame's end
        // offset (bytes consumed once that frame has been produced).
        let mut iter = FrameIter::new(&bytes[..]).expect("valid trace");
        let mut ends = Vec::new();
        let mut frames = 0usize;
        while let Some(frame) = iter.next() {
            frame.expect("valid frame");
            frames += 1;
            ends.push(iter.byte_offset() as usize);
        }
        assert_eq!(frames, 6);

        // Pass 2: replay again behind the fence. Before pulling frame
        // `f`, only bytes up to frame `f`'s end are reachable; a
        // decoder that buffered ahead would trip the fence and error.
        let fence = Rc::new(Cell::new(ends[0]));
        let reader = FencedReader {
            data: &bytes,
            pos: 0,
            fence: Rc::clone(&fence),
        };
        let mut iter = FrameIter::new(reader).expect("prelude fits in frame 0's window");
        for (f, end) in ends.iter().enumerate() {
            fence.set(*end);
            let frame = iter
                .next()
                .unwrap_or_else(|| panic!("frame {f} missing (v{version})"))
                .unwrap_or_else(|e| panic!("frame {f} read past its bytes (v{version}): {e}"));
            assert_eq!(iter.byte_offset() as usize, *end, "frame {f} end offset");
            drop(frame);
        }
        assert!(iter.next().is_none(), "no trailing frames");
    }
}
