//! Prints Fig. 7 (relative error of the four evaluated metrics).
use megsim_bench::experiments::{fig7, run_all_megsim};
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    let runs = run_all_megsim(&data, &ctx.megsim);
    print!("{}", fig7(&data, &runs));
}
