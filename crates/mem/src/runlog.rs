//! Coalesced access-run logging: the building blocks of record/replay
//! memory simulation.
//!
//! The timing model's fast paths service address streams as same-line
//! **runs** — `count` back-to-back accesses that share one cache line
//! cost one tag probe ([`crate::Cache::access_run`]) plus replayed
//! bookkeeping. Intra-frame tile sharding extends the idea across
//! threads: parallel shard workers *record* their would-be traffic as
//! `(addr, count)` runs without touching any shared cache, and a
//! deterministic tile-ordered merge *replays* the logs through the
//! existing `access_run` entry points, leaving every cache, DRAM row
//! buffer and stat counter in exactly the state the sequential
//! simulation would have produced.
//!
//! [`RunCoalescer`] is the shared merge machine: it folds an address
//! stream into maximal same-line runs with the exact boundaries a
//! sequential scan would produce, so the recorded log replays
//! bit-identically. [`Cache::access_run`],
//! [`crate::MemoryHierarchy::access_run`] and
//! [`crate::Dram::access_run`] are the replay entry points.
//!
//! [`Cache::access_run`]: crate::Cache::access_run

/// Folds an address stream into maximal same-line `(addr, count)` runs.
///
/// Feeding addresses (or pre-coalesced same-line sub-runs) through
/// [`RunCoalescer::push`] emits a closed run every time the line
/// changes; [`RunCoalescer::flush`] emits the final open run. The
/// emitted sequence has exactly the boundaries of a sequential
/// same-line scan over the flat address stream: a run is extended if
/// and only if the next address lands on the open run's line, so
/// replaying the runs in order through an `access_run` entry point is
/// bit-identical to issuing the flat stream through scalar accesses.
///
/// The coalescer carries no cache state — it is pure address
/// arithmetic, safe to use from parallel shard workers that must not
/// touch the shared memory hierarchy.
#[derive(Debug, Clone)]
pub struct RunCoalescer {
    line_shift: u32,
    addr: u64,
    line: u64,
    count: u64,
}

impl RunCoalescer {
    /// Creates an empty coalescer for `1 << line_shift`-byte lines.
    #[inline]
    pub fn new(line_shift: u32) -> Self {
        Self {
            line_shift,
            addr: 0,
            line: 0,
            count: 0,
        }
    }

    /// Adds `count` accesses starting at `addr`, all guaranteed by the
    /// caller to fall on one line (single addresses use `count == 1`).
    /// Emits the previously open run if `addr` starts a new line.
    #[inline]
    pub fn push(&mut self, addr: u64, count: u64, mut emit: impl FnMut(u64, u64)) {
        let line = addr >> self.line_shift;
        if self.count > 0 && line == self.line {
            self.count += count;
        } else {
            if self.count > 0 {
                emit(self.addr, self.count);
            }
            self.addr = addr;
            self.line = line;
            self.count = count;
        }
    }

    /// Emits the open run, if any, and resets the coalescer.
    #[inline]
    pub fn flush(&mut self, mut emit: impl FnMut(u64, u64)) {
        if self.count > 0 {
            emit(self.addr, self.count);
            self.count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs_of(addrs: &[u64], line_shift: u32) -> Vec<(u64, u64)> {
        let mut c = RunCoalescer::new(line_shift);
        let mut out = Vec::new();
        for &a in addrs {
            c.push(a, 1, |addr, count| out.push((addr, count)));
        }
        c.flush(|addr, count| out.push((addr, count)));
        out
    }

    #[test]
    fn coalesces_same_line_streaks() {
        // 64-byte lines: 0x00..0x3f share a line, 0x40 starts the next.
        assert_eq!(
            runs_of(&[0x00, 0x08, 0x3f, 0x40, 0x41, 0x00], 6),
            vec![(0x00, 3), (0x40, 2), (0x00, 1)]
        );
    }

    #[test]
    fn run_boundaries_match_sequential_scan() {
        // Alternating lines never merge; repeated flushes are stable.
        assert_eq!(
            runs_of(&[0x00, 0x40, 0x00, 0x40], 6),
            vec![(0x00, 1), (0x40, 1), (0x00, 1), (0x40, 1)]
        );
    }

    #[test]
    fn pre_coalesced_sub_runs_extend_open_run() {
        let mut c = RunCoalescer::new(6);
        let mut out = Vec::new();
        c.push(0x00, 2, |a, n| out.push((a, n)));
        c.push(0x10, 2, |a, n| out.push((a, n)));
        c.push(0x80, 4, |a, n| out.push((a, n)));
        c.flush(|a, n| out.push((a, n)));
        assert_eq!(out, vec![(0x00, 4), (0x80, 4)]);
    }

    #[test]
    fn empty_flush_emits_nothing() {
        let mut c = RunCoalescer::new(6);
        c.flush(|_, _| panic!("no run recorded"));
    }

    #[test]
    fn concatenated_runs_replay_to_identical_cache_state() {
        use crate::{Cache, CacheConfig};
        let addrs: Vec<u64> = (0..200u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 3) % 0x800)
            .collect();
        let mut scalar = Cache::new(CacheConfig::new("t", 512, 64, 2, 1, 1));
        let mut replay = scalar.clone();
        for &a in &addrs {
            scalar.access(a, a % 3 == 0);
        }
        // Record with the coalescer, replay through access_run. Writes
        // vs reads must split runs too, so coalesce per kind streak.
        let mut c = RunCoalescer::new(6);
        let mut runs: Vec<(u64, u64, bool)> = Vec::new();
        let mut kind = false;
        for &a in &addrs {
            let w = a % 3 == 0;
            if w != kind {
                c.flush(|addr, count| runs.push((addr, count, kind)));
                kind = w;
            }
            c.push(a, 1, |addr, count| runs.push((addr, count, w)));
        }
        c.flush(|addr, count| runs.push((addr, count, kind)));
        for (addr, count, w) in runs {
            replay.access_run(addr, w, count);
        }
        assert_eq!(scalar.stats(), replay.stats());
        // Post-state agrees: the next eviction decision is identical.
        assert_eq!(scalar.access(0x1234, false), replay.access(0x1234, false));
    }
}
