//! Batch campaign service: many characterize / estimate runs through
//! one process, one worker pool, and one shared frame cache.
//!
//! A *campaign* is one named unit of work over one trace (what a single
//! CLI invocation would do). A *batch* is a manifest of campaigns run
//! concurrently: each campaign becomes one work item on the
//! `megsim-exec` pool, so campaigns overlap each other while each
//! campaign's own nested parallel passes run inline on its worker (the
//! pool never oversubscribes). Campaigns over overlapping traces
//! share frame results three ways — the in-memory cache, the optional
//! disk store, and the in-flight single-flight map in
//! [`crate::frame_cache`] that collapses *concurrent* identical frames
//! into one simulation.
//!
//! This module is deliberately ignorant of trace files: a campaign's
//! body is a caller-supplied closure (the CLI wires in the `megsim-gl`
//! streaming replay), and this module contributes what the closure
//! cannot see — scheduling, wall-clock accounting, and per-campaign
//! cache-tier attribution via [`frame_cache::take_thread_counts`].

use std::time::Instant;

use parking_lot::Mutex;

use crate::frame_cache::{self, TierCounts};

/// What a batch campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Functional characterization: feature matrix only.
    Characterize,
    /// Full MEGsim estimation: characterize, select, simulate
    /// representatives.
    Estimate,
}

impl BatchOp {
    fn parse(token: &str) -> Option<BatchOp> {
        match token {
            "characterize" => Some(BatchOp::Characterize),
            "estimate" => Some(BatchOp::Estimate),
            _ => None,
        }
    }

    /// The manifest keyword for this op.
    pub fn keyword(&self) -> &'static str {
        match self {
            BatchOp::Characterize => "characterize",
            BatchOp::Estimate => "estimate",
        }
    }
}

/// One campaign from a batch manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Unique campaign name (labels the report row and output files).
    pub name: String,
    /// What to run.
    pub op: BatchOp,
    /// Trace path, opaque to this module.
    pub trace: String,
    /// Clustering seed (`seed=N`, default 42).
    pub seed: u64,
    /// Output file for the campaign's CSV, if any (`out=PATH`).
    pub out: Option<String>,
    /// Whether `estimate` also runs the full ground truth
    /// (`ground-truth`).
    pub ground_truth: bool,
}

/// Parses a batch manifest.
///
/// One campaign per line:
///
/// ```text
/// # comment
/// <name> <characterize|estimate> <trace> [seed=N] [out=PATH] [ground-truth]
/// ```
///
/// Blank lines and `#` comments are skipped. Campaign names must be
/// unique — they key the report and any output files.
pub fn parse_manifest(text: &str) -> Result<Vec<BatchJob>, String> {
    let mut jobs: Vec<BatchJob> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("manifest line {}: {msg}", lineno + 1);
        let mut tokens = line.split_whitespace();
        let name = tokens.next().expect("non-empty line").to_string();
        let op_token = tokens
            .next()
            .ok_or_else(|| at("expected 'characterize' or 'estimate' after the name".into()))?;
        let op = BatchOp::parse(op_token).ok_or_else(|| {
            at(format!(
                "expected 'characterize' or 'estimate' after the name, got '{op_token}'"
            ))
        })?;
        let trace = tokens
            .next()
            .ok_or_else(|| at("expected a trace path".into()))?
            .to_string();
        let mut job = BatchJob {
            name,
            op,
            trace,
            seed: 42,
            out: None,
            ground_truth: false,
        };
        for token in tokens {
            if let Some(seed) = token.strip_prefix("seed=") {
                job.seed = seed
                    .parse()
                    .map_err(|_| at(format!("invalid seed '{seed}'")))?;
            } else if let Some(path) = token.strip_prefix("out=") {
                job.out = Some(path.to_string());
            } else if token == "ground-truth" {
                job.ground_truth = true;
            } else {
                return Err(at(format!("unknown token '{token}'")));
            }
        }
        if jobs.iter().any(|j| j.name == job.name) {
            return Err(at(format!("duplicate campaign name '{}'", job.name)));
        }
        jobs.push(job);
    }
    Ok(jobs)
}

/// One campaign's outcome within a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign name from the manifest.
    pub name: String,
    /// One summary line on success, the error message on failure.
    pub outcome: Result<String, String>,
    /// Wall-clock seconds the campaign took on its worker.
    pub seconds: f64,
    /// Cache tiers serving this campaign's lookups. A single-flight
    /// leader's compute is attributed to the leading campaign; each
    /// waiting campaign counts one `shared`.
    pub tiers: TierCounts,
}

/// The whole batch's outcome.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-campaign rows, in manifest order.
    pub campaigns: Vec<CampaignReport>,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
}

impl BatchReport {
    /// Tier counts summed over every campaign.
    pub fn totals(&self) -> TierCounts {
        let mut totals = TierCounts::ZERO;
        for c in &self.campaigns {
            totals.merge(&c.tiers);
        }
        totals
    }

    /// How many campaigns failed.
    pub fn failures(&self) -> usize {
        self.campaigns.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// The in-flight dedup factor: frame results demanded (computed or
    /// shared) per result actually computed. `1.0` means no two
    /// campaigns ever raced the same frame; `2.0` means every computed
    /// frame served a second campaign for free.
    pub fn dedup_factor(&self) -> f64 {
        let t = self.totals();
        let computed = t.activity_computed + t.stats_computed;
        let shared = t.activity_shared + t.stats_shared;
        if computed == 0 {
            1.0
        } else {
            (computed + shared) as f64 / computed as f64
        }
    }

    /// A human-readable per-campaign table plus batch totals.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>9} {:>6} {:>6} {:>7} {:>9} {:>7}  status",
            "campaign", "seconds", "lookups", "mem", "disk", "shared", "computed", "hit%"
        );
        for c in &self.campaigns {
            let t = &c.tiers;
            let _ = writeln!(
                out,
                "{:<20} {:>8.2} {:>9} {:>6} {:>6} {:>7} {:>9} {:>6.1}%  {}",
                c.name,
                c.seconds,
                t.lookups(),
                t.activity_memory + t.stats_memory,
                t.activity_disk + t.stats_disk,
                t.activity_shared + t.stats_shared,
                t.activity_computed + t.stats_computed,
                t.hit_rate() * 100.0,
                match &c.outcome {
                    Ok(s) => s.as_str(),
                    Err(e) => e.as_str(),
                },
            );
        }
        let totals = self.totals();
        let _ = writeln!(
            out,
            "batch: {} campaigns ({} failed) in {:.2}s, {} lookups, {}, dedup {:.2}x",
            self.campaigns.len(),
            self.failures(),
            self.seconds,
            totals.lookups(),
            totals.summary(),
            self.dedup_factor(),
        );
        out
    }
}

/// Runs every job concurrently on the worker pool and collects a
/// [`BatchReport`] in manifest order.
///
/// `run_job` executes one campaign body and returns its summary line;
/// errors are captured per campaign (one bad trace fails its row, not
/// the batch). Each campaign runs wholly on one worker thread — its
/// nested parallel passes degrade to sequential there — which is what
/// makes the per-thread tier counters attributable to the campaign.
pub fn run_batch<F>(jobs: &[BatchJob], run_job: F) -> BatchReport
where
    F: Fn(&BatchJob) -> Result<String, String> + Sync,
{
    let start = Instant::now();
    let rows: Mutex<Vec<(usize, CampaignReport)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    megsim_exec::par_for_each_task((0..jobs.len()).collect(), |i| {
        let job = &jobs[i];
        // Drop whatever a previous campaign on this worker left behind,
        // so the take() below is this campaign's counts alone.
        let _ = frame_cache::take_thread_counts();
        let t0 = Instant::now();
        let outcome = run_job(job);
        let report = CampaignReport {
            name: job.name.clone(),
            outcome,
            seconds: t0.elapsed().as_secs_f64(),
            tiers: frame_cache::take_thread_counts(),
        };
        rows.lock().push((i, report));
    });
    let mut rows = rows.into_inner();
    rows.sort_by_key(|(i, _)| *i);
    BatchReport {
        campaigns: rows.into_iter().map(|(_, c)| c).collect(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::draw::Frame;
    use megsim_timing::FrameStats;

    #[test]
    fn manifest_parses_fields_and_defaults() {
        let jobs = parse_manifest(
            "# campaigns\n\
             \n\
             warm characterize a.mglt\n\
             full estimate b.mglt seed=7 out=b.csv ground-truth\n",
        )
        .expect("valid manifest");
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "warm");
        assert_eq!(jobs[0].op, BatchOp::Characterize);
        assert_eq!(jobs[0].seed, 42);
        assert!(!jobs[0].ground_truth);
        assert_eq!(jobs[1].op, BatchOp::Estimate);
        assert_eq!(jobs[1].seed, 7);
        assert_eq!(jobs[1].out.as_deref(), Some("b.csv"));
        assert!(jobs[1].ground_truth);
    }

    #[test]
    fn manifest_rejects_bad_lines() {
        for (bad, needle) in [
            ("x frobnicate a.mglt", "characterize"),
            ("x estimate", "trace path"),
            ("x estimate a.mglt seed=abc", "invalid seed"),
            ("x estimate a.mglt wat", "unknown token"),
            ("x estimate a.mglt\nx characterize b.mglt", "duplicate"),
        ] {
            let err = parse_manifest(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad}: {err}");
            assert!(err.contains("line"), "{bad}: {err}");
        }
    }

    #[test]
    fn manifest_errors_name_the_line_and_the_offending_token() {
        // The ISSUE 9 satellite: a malformed entry must surface *which*
        // line and *which* token broke, not an opaque failure.
        let err = parse_manifest(
            "# header comment\n\
             good characterize a.mglt\n\
             \n\
             bad frobnicate b.mglt\n",
        )
        .expect_err("bad op must fail");
        assert!(err.contains("manifest line 4"), "wrong line: {err}");
        assert!(err.contains("'frobnicate'"), "token not named: {err}");

        let err = parse_manifest("solo estimate t.mglt typo=1").expect_err("unknown token");
        assert!(err.contains("manifest line 1"), "{err}");
        assert!(err.contains("'typo=1'"), "{err}");

        let err = parse_manifest("solo estimate t.mglt seed=xyz").expect_err("bad seed");
        assert!(err.contains("manifest line 1"), "{err}");
        assert!(err.contains("'xyz'"), "{err}");
    }

    #[test]
    fn batch_reports_in_manifest_order_and_captures_failures() {
        let jobs: Vec<BatchJob> = (0..6)
            .map(|i| BatchJob {
                name: format!("c{i}"),
                op: BatchOp::Characterize,
                trace: "unused".into(),
                seed: 42,
                out: None,
                ground_truth: false,
            })
            .collect();
        let report = run_batch(&jobs, |job| {
            if job.name == "c3" {
                Err("boom".into())
            } else {
                Ok(format!("done {}", job.name))
            }
        });
        let names: Vec<&str> = report.campaigns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["c0", "c1", "c2", "c3", "c4", "c5"]);
        assert_eq!(report.failures(), 1);
        assert!(report.campaigns[3].outcome.is_err());
        assert!(report.table().contains("boom"));
        assert_eq!(report.dedup_factor(), 1.0);
    }

    #[test]
    fn campaigns_sharing_frames_are_attributed_tiers() {
        // A synthetic "campaign" that looks up the same frame under the
        // same config fingerprint: whichever campaign gets there first
        // computes; the rest hit memory or share the in-flight result.
        // Unique config fp keeps this test's keys disjoint from other
        // tests sharing the process-global cache.
        let config_fp = 0xB47C_0000_0000_0000_0000_0000_0000_0001u128;
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| BatchJob {
                name: format!("c{i}"),
                op: BatchOp::Estimate,
                trace: "unused".into(),
                seed: 42,
                out: None,
                ground_truth: false,
            })
            .collect();
        let report = run_batch(&jobs, |_| {
            let stats = frame_cache::stats_or_else(config_fp, &Frame::new(), || FrameStats {
                cycles: 1234,
                ..FrameStats::default()
            });
            assert_eq!(stats.cycles, 1234);
            Ok("ok".into())
        });
        let totals = report.totals();
        assert_eq!(totals.lookups(), 4, "{}", report.table());
        let computed = totals.stats_computed;
        assert!(computed >= 1, "{}", report.table());
        assert_eq!(
            computed + totals.stats_memory + totals.stats_shared,
            4,
            "{}",
            report.table()
        );
    }
}
